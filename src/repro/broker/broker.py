"""The in-process AMQP-style message broker.

:class:`Broker` wires together exchanges, queues and bindings and
delivers messages to consumer callbacks.  It runs in one of two modes:

- **synchronous** (no simulator): ``publish`` delivers to the selected
  consumers immediately, in publish order.  Used by unit tests and the
  fast correctness-oriented engine driver.
- **simulated** (a :class:`~repro.simulation.kernel.Simulator` plus a
  :class:`~repro.simulation.network.NetworkModel`): each delivery is
  scheduled as an event after a per-channel network delay.  Per
  ``(sender, consumer)`` channel order is always FIFO (the AMQP
  guarantee); order *across* channels depends on the network model,
  which is how the out-of-order scenarios of thesis Figure 8 are
  produced and the ordering protocol (§3.3) is exercised.

Simulated mode implements **at-least-once delivery** on top of
fault-injecting networks:

- every delivery is stamped with a per-``(sender, consumer)`` channel
  sequence number and passes a delivery *gate* that fires callbacks in
  sequence order — a retransmitted message therefore holds back its
  successors (head-of-line blocking), so pairwise FIFO survives loss;
- a transmission attempt the network drops entirely (an empty
  :meth:`~repro.simulation.network.NetworkModel.transmit` plan) is
  retried after an exponentially backed-off retransmission delay until
  a copy gets through;
- consumers registered with ``manual_ack`` must :meth:`ack` each
  delivery after processing it; on :meth:`crash_consumer` every
  unacknowledged delivery is requeued and redelivered (to a surviving
  competing consumer, or held in the queue backlog until the crashed
  consumer's replacement re-attaches);
- duplicate copies injected by the network are delivered with the
  ``redelivered`` flag and the *same* delivery tag — idempotent
  consumers dedup them by their protocol sequence numbers.
"""

from __future__ import annotations

import itertools
import logging
from dataclasses import dataclass, field
from typing import Callable

from ..errors import BrokerError, UnknownExchangeError, UnknownQueueError
from ..simulation.events import Event
from ..simulation.kernel import Simulator
from ..simulation.network import NetworkModel, ZeroDelayNetwork
from .exchange import Exchange
from .message import Delivery, Message
from .queue import Consumer, ConsumerFn, MessageQueue, message_weight

logger = logging.getLogger(__name__)


@dataclass
class _PendingDelivery:
    """One tracked delivery: a message assigned to one consumer."""

    tag: int
    message: Message
    queue_name: str
    consumer_id: str
    callback: ConsumerFn
    manual_ack: bool
    seq: int
    epoch: int
    #: Tuple-weighted capacity held while in flight (>1 for batches).
    weight: int = 1
    attempts: int = 0
    delivered: bool = False
    events: list[Event] = field(default_factory=list)

    @property
    def channel(self) -> tuple[str, str]:
        return (self.message.sender, self.consumer_id)


@dataclass
class _ChannelGate:
    """In-order delivery gate of one (sender, consumer) channel."""

    expected: int = 0
    ready: dict[int, "_PendingDelivery"] = field(default_factory=dict)


class Broker:
    """An in-process message broker implementing the AMQ model."""

    def __init__(self, simulator: Simulator | None = None,
                 network: NetworkModel | None = None, *,
                 redelivery_delay: float = 0.05,
                 redelivery_max_delay: float = 1.0) -> None:
        if network is not None and simulator is None:
            raise BrokerError("a network model requires a simulator")
        if redelivery_delay <= 0 or redelivery_max_delay < redelivery_delay:
            raise BrokerError(
                f"need 0 < redelivery_delay <= redelivery_max_delay, got "
                f"{redelivery_delay!r} / {redelivery_max_delay!r}")
        self._sim = simulator
        self._network = network or ZeroDelayNetwork()
        self.redelivery_delay = redelivery_delay
        self.redelivery_max_delay = redelivery_max_delay
        self._exchanges: dict[str, Exchange] = {}
        self._queues: dict[str, MessageQueue] = {}
        self.published = 0
        self.delivered = 0
        #: Transmission attempts the network lost (retransmitted later).
        self.lost_transmissions = 0
        #: Retransmission attempts scheduled after a loss.
        self.retransmissions = 0
        #: Extra copies delivered because the network duplicated them.
        self.duplicate_deliveries = 0
        #: Messages requeued after a consumer crash.
        self.redelivered = 0
        #: In-flight copies discarded because their consumer attachment
        #: was gone (crashed) by the time they arrived.
        self.dead_lettered = 0
        #: Messages dropped with their queue on :meth:`delete_queue`.
        self.dropped_on_delete = 0
        # -- reliability state (simulated mode) ---------------------------
        self._tags = itertools.count()
        self._unacked: dict[int, _PendingDelivery] = {}
        self._unacked_by_consumer: dict[str, dict[int, _PendingDelivery]] = {}
        self._channel_seq: dict[tuple[str, str], int] = {}
        self._gates: dict[tuple[str, str], _ChannelGate] = {}
        #: Attachment epoch per (queue, consumer): bumped by crashes so
        #: stale in-flight copies addressed to a dead attachment are
        #: discarded instead of firing against it.
        self._attach_epochs: dict[tuple[str, str], int] = {}
        #: Messages requeued by a consumer crash: their next delivery
        #: carries the AMQP ``redelivered`` flag.
        self._requeued_ids: set[int] = set()
        #: Optional observer called for every delivery (metrics hooks).
        self.on_deliver: Callable[[Delivery], None] | None = None
        #: Overflow policy hook, consulted when a publish finds a
        #: bounded queue at capacity.  Returns ``"accept"`` (enqueue
        #: anyway — the bound is soft), ``"shed"`` (drop the new
        #: message for this queue) or ``"evict-oldest"`` (drop the
        #: oldest buffered message, then enqueue).  ``None`` behaves as
        #: accept-and-count; the overload layer installs real policies.
        self.overflow_policy: Callable[[MessageQueue, Message], str] | None = None
        #: Messages dropped by the overflow policy (shed + evicted).
        self.overflow_dropped = 0
        #: Overflow counts carried over from deleted queues, so the
        #: exported total stays monotone across scale-in.
        self._retired_overflows = 0

    def export_metrics(self, registry) -> None:
        """Publish broker totals into a :class:`MetricsRegistry`."""
        registry.counter("repro_broker_published_total",
                         "Messages published to the broker."
                         ).set_total(self.published)
        registry.counter("repro_broker_delivered_total",
                         "Deliveries handed to consumers."
                         ).set_total(self.delivered)
        registry.counter("repro_broker_lost_transmissions_total",
                         "Transmission attempts lost by the network."
                         ).set_total(self.lost_transmissions)
        registry.counter("repro_broker_retransmissions_total",
                         "Retransmission attempts after a loss."
                         ).set_total(self.retransmissions)
        registry.counter("repro_broker_duplicate_deliveries_total",
                         "Extra copies delivered by network duplication."
                         ).set_total(self.duplicate_deliveries)
        registry.counter("repro_broker_redelivered_total",
                         "Messages requeued after consumer crashes."
                         ).set_total(self.redelivered)
        registry.counter("repro_broker_dead_lettered_total",
                         "In-flight copies discarded on dead attachments."
                         ).set_total(self.dead_lettered)
        registry.counter("repro_broker_dropped_on_delete_total",
                         "Messages destroyed with deleted queues."
                         ).set_total(self.dropped_on_delete)
        registry.counter("repro_broker_queue_overflow_total",
                         "Publishes that found a bounded queue full."
                         ).set_total(self._retired_overflows
                                     + sum(q.overflows
                                           for q in self._queues.values()))
        registry.counter("repro_broker_overflow_dropped_total",
                         "Messages dropped by the overflow policy."
                         ).set_total(self.overflow_dropped)
        registry.gauge("repro_broker_backlog",
                       "Buffered messages across all queues."
                       ).set(sum(q.backlog_depth
                                 for q in self._queues.values()))
        registry.gauge("repro_broker_in_flight",
                       "Dispatched-but-unacknowledged deliveries, "
                       "summed over queues."
                       ).set(sum(q.in_flight for q in self._queues.values()))
        registry.gauge("repro_broker_unacked",
                       "Deliveries awaiting acknowledgement."
                       ).set(len(self._unacked))

    # ------------------------------------------------------------------
    # Topology management
    # ------------------------------------------------------------------
    def declare_exchange(self, name: str, type: str = "topic") -> Exchange:
        """Create (or return the existing, type-compatible) exchange."""
        existing = self._exchanges.get(name)
        if existing is not None:
            if existing.type != type:
                raise BrokerError(
                    f"exchange {name!r} exists with type {existing.type!r}, "
                    f"redeclared as {type!r}")
            return existing
        exchange = Exchange(name=name, type=type)
        self._exchanges[name] = exchange
        return exchange

    def declare_queue(self, name: str,
                      max_depth: int | None = None) -> MessageQueue:
        """Create (or return the existing) queue.

        ``max_depth`` bounds the queue (see :class:`MessageQueue`);
        redeclaring an existing queue with an explicit bound updates it.
        """
        queue = self._queues.get(name)
        if queue is None:
            queue = MessageQueue(name, max_depth=max_depth)
            self._queues[name] = queue
        elif max_depth is not None:
            queue.max_depth = max_depth
        return queue

    def delete_queue(self, name: str) -> int:
        """Remove a queue and all its bindings (used on scale-in).

        Returns the number of messages destroyed with the queue —
        buffered backlog plus tracked in-flight deliveries — so callers
        can surface (rather than silently swallow) the data loss.
        """
        if name not in self._queues:
            raise UnknownQueueError(f"queue {name!r} does not exist")
        queue = self._queues.pop(name)
        self._retired_overflows += queue.overflows
        dropped = queue.backlog_depth
        for tag, rec in list(self._unacked.items()):
            if rec.queue_name == name:
                self._forget(rec)
                dropped += 1
        for exchange in self._exchanges.values():
            exchange.unbind_queue(name)
        if dropped:
            self.dropped_on_delete += dropped
            logger.warning("delete_queue(%r) destroyed %d undelivered "
                           "message(s)", name, dropped)
        return dropped

    def bind(self, exchange_name: str, queue_name: str,
             binding_key: str = "#") -> None:
        exchange = self._exchange(exchange_name)
        if queue_name not in self._queues:
            raise UnknownQueueError(f"queue {queue_name!r} does not exist")
        exchange.bind(queue_name, binding_key)

    def consume(self, queue_name: str, consumer_id: str,
                callback: ConsumerFn, *, manual_ack: bool = False) -> None:
        """Attach a competing consumer to a queue; drains any backlog."""
        queue = self._queue(queue_name)
        queue.add_consumer(consumer_id, callback, manual_ack=manual_ack)
        self._attach_epochs.setdefault((queue_name, consumer_id), 0)
        for message, consumer in queue.drain_backlog():
            self._deliver(queue, message, consumer)

    def cancel_consumer(self, queue_name: str, consumer_id: str) -> None:
        self._queue(queue_name).remove_consumer(consumer_id)

    # ------------------------------------------------------------------
    # Acknowledgement / crash recovery (at-least-once semantics)
    # ------------------------------------------------------------------
    def ack(self, tag: int) -> None:
        """Acknowledge one delivery: the consumer fully processed it."""
        rec = self._unacked.pop(tag, None)
        if rec is not None:
            by_consumer = self._unacked_by_consumer.get(rec.consumer_id)
            if by_consumer is not None:
                by_consumer.pop(tag, None)
            self._settle(rec)

    def _settle(self, rec: _PendingDelivery) -> None:
        """One tracked delivery left the pipeline: release its capacity."""
        queue = self._queues.get(rec.queue_name)
        if queue is not None and queue.in_flight > 0:
            queue.in_flight = max(0, queue.in_flight - rec.weight)

    def unacked_count(self, consumer_id: str) -> int:
        return len(self._unacked_by_consumer.get(consumer_id, {}))

    def unacked_payloads(self, consumer_id: str) -> list:
        """Payloads of this consumer's unacknowledged deliveries, in
        delivery-tag (i.e. per-channel FIFO) order."""
        recs = self._unacked_by_consumer.get(consumer_id, {})
        return [rec.message.payload
                for tag, rec in sorted(recs.items())]

    def unacked_items(self, consumer_id: str) -> list[tuple[int, object]]:
        """``(tag, payload)`` pairs of unacknowledged deliveries, in
        tag order.  The tag lets crash recovery correlate a partially
        processed transport batch with the consumer's per-batch
        bookkeeping (which members were settled before the crash)."""
        recs = self._unacked_by_consumer.get(consumer_id, {})
        return [(tag, rec.message.payload)
                for tag, rec in sorted(recs.items())]

    def crash_consumer(self, queue_name: str, consumer_id: str) -> int:
        """A consumer died: detach it and requeue its unacked messages.

        Unacknowledged deliveries (in flight, gate-buffered, or handed
        to the consumer but never processed) are put back on the queue
        in their original order: surviving competing consumers receive
        them immediately, otherwise they wait in the backlog for the
        replacement consumer.  Returns the number of requeued messages.
        """
        queue = self._queue(queue_name)
        if consumer_id in queue.consumer_ids:
            queue.remove_consumer(consumer_id)
        key = (queue_name, consumer_id)
        self._attach_epochs[key] = self._attach_epochs.get(key, 0) + 1
        recs = [rec for tag, rec in
                sorted(self._unacked_by_consumer.get(consumer_id, {}).items())
                if rec.queue_name == queue_name]
        for rec in recs:
            self._forget(rec)
        # Reset the per-channel sequencing of the dead attachment: the
        # replacement starts a fresh FIFO channel from sequence 0.
        for channel in [c for c in self._channel_seq if c[1] == consumer_id]:
            del self._channel_seq[channel]
        for channel in [c for c in self._gates if c[1] == consumer_id]:
            del self._gates[channel]
        self.redelivered += len(recs)
        messages = [rec.message for rec in recs]
        self._requeued_ids.update(m.message_id for m in messages)
        redeliverable: list[tuple[Message, Consumer]] = []
        if queue.has_consumers:
            for message in messages:
                consumer = queue.offer(message)
                assert consumer is not None
                redeliverable.append((message, consumer))
        else:
            queue.requeue(messages)
        for message, consumer in redeliverable:
            self._deliver(queue, message, consumer)
        return len(recs)

    def _forget(self, rec: _PendingDelivery) -> None:
        """Drop one tracked delivery and cancel its scheduled events."""
        for event in rec.events:
            event.cancel()
        rec.events = []
        tracked = self._unacked.pop(rec.tag, None)
        by_consumer = self._unacked_by_consumer.get(rec.consumer_id)
        if by_consumer is not None:
            by_consumer.pop(rec.tag, None)
        if tracked is not None:
            self._settle(tracked)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def exchange_names(self) -> list[str]:
        return sorted(self._exchanges)

    def queue_names(self) -> list[str]:
        return sorted(self._queues)

    def queue(self, name: str) -> MessageQueue:
        return self._queue(name)

    @property
    def now(self) -> float:
        return self._sim.now if self._sim is not None else 0.0

    @property
    def is_simulated(self) -> bool:
        """True when deliveries are scheduled on a simulator (vs. eager)."""
        return self._sim is not None

    # ------------------------------------------------------------------
    # Publishing
    # ------------------------------------------------------------------
    def publish(self, exchange_name: str, message: Message) -> int:
        """Route ``message`` through an exchange; return queues reached."""
        exchange = self._exchange(exchange_name)
        self.published += 1
        queue_names = exchange.route(message.routing_key)
        for queue_name in queue_names:
            queue = self._queue(queue_name)
            if queue.is_full:
                queue.overflows += 1
                verdict = ("accept" if self.overflow_policy is None
                           else self.overflow_policy(queue, message))
                if verdict == "shed":
                    self.overflow_dropped += 1
                    continue
                if verdict == "evict-oldest":
                    # In-flight deliveries cannot be recalled; only the
                    # buffered backlog yields a victim.  A full queue
                    # with an empty backlog degrades to accept.
                    if queue.evict_oldest() is not None:
                        self.overflow_dropped += 1
                elif verdict != "accept":
                    raise BrokerError(
                        f"overflow policy returned {verdict!r}; expected "
                        f"'accept', 'shed' or 'evict-oldest'")
            consumer = queue.offer(message)
            if consumer is not None:
                self._deliver(queue, message, consumer)
        return len(queue_names)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _deliver(self, queue: MessageQueue, message: Message,
                 consumer: Consumer) -> None:
        if self._sim is None:
            delivery = Delivery(message=message, queue=queue.name,
                                consumer=consumer.consumer_id, time=0.0)
            self.delivered += 1
            if self.on_deliver is not None:
                self.on_deliver(delivery)
            consumer.callback(delivery)
            return

        channel = (message.sender, consumer.consumer_id)
        seq = self._channel_seq.get(channel, 0)
        self._channel_seq[channel] = seq + 1
        rec = _PendingDelivery(
            tag=next(self._tags), message=message, queue_name=queue.name,
            consumer_id=consumer.consumer_id, callback=consumer.callback,
            manual_ack=consumer.manual_ack, seq=seq,
            epoch=self._attach_epochs.get((queue.name, consumer.consumer_id),
                                          0),
            weight=message_weight(message))
        self._unacked[rec.tag] = rec
        self._unacked_by_consumer.setdefault(
            rec.consumer_id, {})[rec.tag] = rec
        queue.in_flight += rec.weight
        queue.note_depth()
        self._transmit(rec)

    def _transmit(self, rec: _PendingDelivery) -> None:
        """One transmission attempt; retries after loss with backoff."""
        rec.attempts += 1
        rec.events = []
        delays = self._network.transmit(rec.message.sender, rec.consumer_id,
                                        self._sim.now)
        if not delays:
            self.lost_transmissions += 1
            backoff = min(self.redelivery_delay * 2 ** (rec.attempts - 1),
                          self.redelivery_max_delay)

            def retry() -> None:
                self.retransmissions += 1
                self._transmit(rec)

            rec.events.append(self._sim.schedule_after(
                backoff, retry,
                label=f"retransmit {rec.queue_name}->{rec.consumer_id}"))
            return
        for delay in delays:
            rec.events.append(self._sim.schedule_after(
                delay, lambda rec=rec: self._arrive(rec),
                label=f"deliver {rec.queue_name}->{rec.consumer_id}"))

    def _arrive(self, rec: _PendingDelivery) -> None:
        """A copy reached the consumer's side: gate it into FIFO order."""
        epoch_key = (rec.queue_name, rec.consumer_id)
        if self._attach_epochs.get(epoch_key, 0) != rec.epoch:
            # The attachment this copy was addressed to has crashed; the
            # message was already requeued (or acked before the crash).
            self.dead_lettered += 1
            return
        gate = self._gates.setdefault(rec.channel, _ChannelGate())
        if rec.delivered or rec.seq < gate.expected:
            self._fire(rec, duplicate=True)
            return
        gate.ready[rec.seq] = rec
        while gate.expected in gate.ready:
            head = gate.ready.pop(gate.expected)
            gate.expected += 1
            self._fire(head)

    def _fire(self, rec: _PendingDelivery, *, duplicate: bool = False) -> None:
        delivery = Delivery(
            message=rec.message, queue=rec.queue_name,
            consumer=rec.consumer_id, time=self._sim.now, tag=rec.tag,
            redelivered=(duplicate or rec.attempts > 1
                         or rec.message.message_id in self._requeued_ids))
        rec.delivered = True
        self.delivered += 1
        if duplicate:
            self.duplicate_deliveries += 1
        elif not rec.manual_ack:
            self.ack(rec.tag)
        if self.on_deliver is not None:
            self.on_deliver(delivery)
        rec.callback(delivery)

    def _exchange(self, name: str) -> Exchange:
        try:
            return self._exchanges[name]
        except KeyError:
            raise UnknownExchangeError(f"exchange {name!r} does not exist") from None

    def _queue(self, name: str) -> MessageQueue:
        try:
            return self._queues[name]
        except KeyError:
            raise UnknownQueueError(f"queue {name!r} does not exist") from None
