"""Broker messages.

A :class:`Message` is the unit the AMQP-style substrate moves around:
an opaque payload plus a routing key and headers.  The stream-join
layers put :class:`~repro.core.tuples.StreamTuple` objects (wrapped in
protocol envelopes) in the payload; the broker never inspects payloads,
only routing keys — exactly the division of labour in AMQP.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Mapping

_message_ids = itertools.count()

#: Fixed wire overhead charged per message by the byte accounting
#: (frame headers, routing key, delivery tag).
MESSAGE_OVERHEAD_BYTES = 32


@dataclass(frozen=True, slots=True)
class Message:
    """An AMQP-style message.

    Attributes:
        routing_key: dot-separated words matched against binding keys.
        payload: opaque application payload.
        headers: optional metadata (used for partition indexes etc.).
        sender: identity of the publishing component (for FIFO channels
            and network delay modelling).
        message_id: unique, monotonically increasing id (diagnostics).
    """

    routing_key: str
    payload: Any
    headers: Mapping[str, Any] = field(default_factory=dict)
    sender: str = ""
    message_id: int = field(default_factory=lambda: next(_message_ids))

    def size_bytes(self) -> int:
        payload_size = getattr(self.payload, "size_bytes", None)
        if callable(payload_size):
            return MESSAGE_OVERHEAD_BYTES + payload_size()
        return MESSAGE_OVERHEAD_BYTES


@dataclass(frozen=True, slots=True)
class Delivery:
    """A message as seen by a consumer: payload plus delivery context.

    ``tag`` is the broker's delivery tag: consumers registered with
    ``manual_ack`` must pass it back to :meth:`~repro.broker.broker.
    Broker.ack` once the message is fully processed, or the broker
    considers it undelivered on a consumer crash and redelivers it.
    ``tag`` is ``-1`` for untracked (auto-acknowledged) deliveries.
    ``redelivered`` marks duplicate copies and crash redeliveries, the
    AMQP redelivered flag.
    """

    message: Message
    queue: str
    consumer: str
    time: float
    tag: int = -1
    redelivered: bool = False
