"""Message queues with competing consumers.

An AMQ queue buffers messages until consumers process them.  Multiple
consumers on one queue *compete*: each message is dispatched to exactly
one of them, round-robin — this is the "queuing model" the thesis uses
for load-balancing routers and store-stream joiners.  A queue with a
single consumer degenerates to a FIFO channel, which is what gives the
pairwise-FIFO property (Definition 8) the ordering protocol builds on.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable

from ..errors import BrokerError
from .message import Delivery, Message

#: Consumer callback: receives a Delivery, returns nothing.
ConsumerFn = Callable[[Delivery], None]


def message_weight(message: Message) -> int:
    """Logical tuples carried by a message (1 unless a transport batch).

    Depth accounting is tuple-weighted so that micro-batching cannot
    launder queue occupancy: a batch of 64 envelopes takes as much
    capacity as 64 individual messages, keeping overload bounds
    expressed in tuples meaningful under batching.
    """
    count = getattr(message.payload, "tuple_count", None)
    return count if isinstance(count, int) else 1


@dataclass
class Consumer:
    """A registered consumer of one queue.

    ``manual_ack`` consumers must acknowledge every delivery through
    the broker once it is processed; unacknowledged deliveries are
    redelivered when the consumer crashes (at-least-once semantics).
    """

    consumer_id: str
    callback: ConsumerFn
    manual_ack: bool = False


class MessageQueue:
    """A named queue with round-robin competing consumers.

    A queue may be *bounded* (``max_depth``): its :attr:`depth` — the
    buffered backlog plus the broker-tracked in-flight deliveries, so a
    crash-requeued message keeps counting toward capacity — is compared
    against the bound by the broker's overload layer.  The bound itself
    is advisory at this level: the queue never refuses a message (the
    admission-control / credit layer upstream is responsible for not
    exceeding it), but :attr:`overflows` counts every publish that
    found the queue already at capacity, so a violated bound is always
    visible.
    """

    def __init__(self, name: str, max_depth: int | None = None) -> None:
        if max_depth is not None and max_depth < 1:
            raise BrokerError(
                f"max_depth must be >= 1 or None, got {max_depth!r}")
        self.name = name
        self.max_depth = max_depth
        self._consumers: list[Consumer] = []
        self._rr_next = 0
        self._backlog: deque[Message] = deque()
        self.enqueued = 0
        self.dispatched = 0
        #: Messages put back by the broker after a consumer crash.
        self.requeued = 0
        #: Tuple-weighted occupancy of the buffered backlog (equals
        #: ``len(_backlog)`` unless batches are queued).
        self._backlog_weight = 0
        #: Dispatched-but-unacknowledged deliveries (broker-maintained,
        #: tuple-weighted); counts toward :attr:`depth` so capacity
        #: covers the whole pipeline, not just the buffered backlog.
        self.in_flight = 0
        #: High-water mark of :attr:`depth` over the queue's lifetime.
        self.peak_depth = 0
        #: Publishes that found the queue at/over its ``max_depth``.
        self.overflows = 0
        #: Messages evicted from the backlog head by a drop-oldest
        #: overflow policy.
        self.evicted = 0

    # -- consumers -------------------------------------------------------
    def add_consumer(self, consumer_id: str, callback: ConsumerFn, *,
                     manual_ack: bool = False) -> None:
        if any(c.consumer_id == consumer_id for c in self._consumers):
            raise BrokerError(
                f"consumer {consumer_id!r} already registered on queue {self.name!r}")
        self._consumers.append(Consumer(consumer_id, callback, manual_ack))

    def remove_consumer(self, consumer_id: str) -> None:
        index = next((i for i, c in enumerate(self._consumers)
                      if c.consumer_id == consumer_id), None)
        if index is None:
            raise BrokerError(
                f"consumer {consumer_id!r} not registered on queue {self.name!r}")
        del self._consumers[index]
        # Preserve the rotation position relative to the survivors:
        # resetting to 0 here would restart dispatch at the earliest-
        # registered consumer after every scale-in, skewing load onto it.
        if index < self._rr_next:
            self._rr_next -= 1
        self._rr_next = self._rr_next % len(self._consumers) \
            if self._consumers else 0

    def reset_rotation(self, *, sort: bool = False) -> None:
        """Restart round-robin dispatch at the first consumer.

        With ``sort=True`` the consumer list is first reordered by
        consumer id.  This is the broker half of the router-pool
        counter realignment (see ``BicliqueEngine.scale_routers``):
        after every pool counter has been advanced to a common floor F,
        restarting the rotation at the smallest consumer id makes the
        stamped ``(counter, router_id)`` keys — ``(F, r0), (F, r1), …,
        (F+1, r0), …`` — strictly increasing in dispatch order again.
        Without the reset, a pool whose rotation pointer sits mid-cycle
        stamps keys that *invert* arrival order (a later tuple gets a
        smaller key), which the ordering protocol turns into missed
        pairs at the joiners.
        """
        if sort:
            self._consumers.sort(key=lambda c: c.consumer_id)
        self._rr_next = 0

    @property
    def consumer_ids(self) -> list[str]:
        return [c.consumer_id for c in self._consumers]

    @property
    def has_consumers(self) -> bool:
        return bool(self._consumers)

    @property
    def backlog_depth(self) -> int:
        """Messages waiting because no consumer is attached yet."""
        return len(self._backlog)

    # -- capacity ---------------------------------------------------------
    @property
    def depth(self) -> int:
        """Total occupancy in *tuples*: backlog plus in-flight weight."""
        return self._backlog_weight + self.in_flight

    @property
    def is_full(self) -> bool:
        """Is the queue at (or beyond) its configured bound?"""
        return self.max_depth is not None and self.depth >= self.max_depth

    @property
    def has_capacity(self) -> bool:
        return not self.is_full

    def note_depth(self) -> None:
        """Refresh the :attr:`peak_depth` high-water mark."""
        depth = self.depth
        if depth > self.peak_depth:
            self.peak_depth = depth

    def evict_oldest(self) -> Message | None:
        """Drop the oldest *buffered* message (drop-oldest overflow).

        Only the backlog can be evicted — an in-flight delivery has
        already left the queue.  Returns the victim, or ``None`` when
        nothing is buffered.
        """
        if not self._backlog:
            return None
        self.evicted += 1
        victim = self._backlog.popleft()
        self._backlog_weight -= message_weight(victim)
        return victim

    # -- message flow ------------------------------------------------------
    def select_consumer(self) -> Consumer:
        """Round-robin pick among the competing consumers."""
        if not self._consumers:
            raise BrokerError(f"queue {self.name!r} has no consumers")
        consumer = self._consumers[self._rr_next % len(self._consumers)]
        self._rr_next = (self._rr_next + 1) % len(self._consumers)
        return consumer

    def offer(self, message: Message) -> Consumer | None:
        """Accept a message; return the consumer to deliver it to.

        Returns ``None`` (and buffers the message) when the queue has no
        consumers yet — messages "stay in the queue until they are
        handled by a consumer".
        """
        self.enqueued += 1
        if not self._consumers:
            self._backlog.append(message)
            self._backlog_weight += message_weight(message)
            self.note_depth()
            return None
        self.dispatched += 1
        return self.select_consumer()

    def requeue(self, messages: list[Message]) -> None:
        """Put crash-redelivered messages at the *front* of the backlog,
        preserving their original order ahead of anything newer."""
        for message in reversed(messages):
            self._backlog.appendleft(message)
            self._backlog_weight += message_weight(message)
        self.requeued += len(messages)
        self.note_depth()

    def drain_backlog(self) -> list[tuple[Message, Consumer]]:
        """Assign buffered messages to consumers (after a late attach)."""
        assigned: list[tuple[Message, Consumer]] = []
        while self._backlog and self._consumers:
            message = self._backlog.popleft()
            self._backlog_weight -= message_weight(message)
            self.dispatched += 1
            assigned.append((message, self.select_consumer()))
        return assigned
