"""Message queues with competing consumers.

An AMQ queue buffers messages until consumers process them.  Multiple
consumers on one queue *compete*: each message is dispatched to exactly
one of them, round-robin — this is the "queuing model" the thesis uses
for load-balancing routers and store-stream joiners.  A queue with a
single consumer degenerates to a FIFO channel, which is what gives the
pairwise-FIFO property (Definition 8) the ordering protocol builds on.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable

from ..errors import BrokerError
from .message import Delivery, Message

#: Consumer callback: receives a Delivery, returns nothing.
ConsumerFn = Callable[[Delivery], None]


@dataclass
class Consumer:
    """A registered consumer of one queue.

    ``manual_ack`` consumers must acknowledge every delivery through
    the broker once it is processed; unacknowledged deliveries are
    redelivered when the consumer crashes (at-least-once semantics).
    """

    consumer_id: str
    callback: ConsumerFn
    manual_ack: bool = False


class MessageQueue:
    """A named queue with round-robin competing consumers."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._consumers: list[Consumer] = []
        self._rr_next = 0
        self._backlog: deque[Message] = deque()
        self.enqueued = 0
        self.dispatched = 0
        #: Messages put back by the broker after a consumer crash.
        self.requeued = 0

    # -- consumers -------------------------------------------------------
    def add_consumer(self, consumer_id: str, callback: ConsumerFn, *,
                     manual_ack: bool = False) -> None:
        if any(c.consumer_id == consumer_id for c in self._consumers):
            raise BrokerError(
                f"consumer {consumer_id!r} already registered on queue {self.name!r}")
        self._consumers.append(Consumer(consumer_id, callback, manual_ack))

    def remove_consumer(self, consumer_id: str) -> None:
        before = len(self._consumers)
        self._consumers = [c for c in self._consumers
                           if c.consumer_id != consumer_id]
        if len(self._consumers) == before:
            raise BrokerError(
                f"consumer {consumer_id!r} not registered on queue {self.name!r}")
        self._rr_next = 0

    @property
    def consumer_ids(self) -> list[str]:
        return [c.consumer_id for c in self._consumers]

    @property
    def has_consumers(self) -> bool:
        return bool(self._consumers)

    @property
    def backlog_depth(self) -> int:
        """Messages waiting because no consumer is attached yet."""
        return len(self._backlog)

    # -- message flow ------------------------------------------------------
    def select_consumer(self) -> Consumer:
        """Round-robin pick among the competing consumers."""
        if not self._consumers:
            raise BrokerError(f"queue {self.name!r} has no consumers")
        consumer = self._consumers[self._rr_next % len(self._consumers)]
        self._rr_next = (self._rr_next + 1) % len(self._consumers)
        return consumer

    def offer(self, message: Message) -> Consumer | None:
        """Accept a message; return the consumer to deliver it to.

        Returns ``None`` (and buffers the message) when the queue has no
        consumers yet — messages "stay in the queue until they are
        handled by a consumer".
        """
        self.enqueued += 1
        if not self._consumers:
            self._backlog.append(message)
            return None
        self.dispatched += 1
        return self.select_consumer()

    def requeue(self, messages: list[Message]) -> None:
        """Put crash-redelivered messages at the *front* of the backlog,
        preserving their original order ahead of anything newer."""
        for message in reversed(messages):
            self._backlog.appendleft(message)
        self.requeued += len(messages)

    def drain_backlog(self) -> list[tuple[Message, Consumer]]:
        """Assign buffered messages to consumers (after a late attach)."""
        assigned: list[tuple[Message, Consumer]] = []
        while self._backlog and self._consumers:
            message = self._backlog.popleft()
            self.dispatched += 1
            assigned.append((message, self.select_consumer()))
        return assigned
