"""Spring-Cloud-Stream-style channel abstractions over the broker.

The thesis implements the biclique dataflow with Spring Cloud Stream
concepts (§4.2–4.3); this module reproduces the ones it relies on, so
the router/joiner wiring code reads like the thesis text:

- a **destination** maps to a topic exchange;
- a **consumer group** maps to one shared queue bound to the exchange —
  group members are competing consumers (the queuing model);
- an **anonymous subscription** gets its own exclusive queue — every
  anonymous subscriber sees every message (publish-subscribe);
- a **partitioned destination** maps to one queue per partition index,
  bound with the index as routing key; producers route by a partition
  key (the hash-partitioning strategy of §3.2).
"""

from __future__ import annotations

import itertools
from typing import Any, Mapping

from ..errors import BrokerError
from .broker import Broker
from .message import Message
from .queue import ConsumerFn

_anon_ids = itertools.count()


class ChannelLayer:
    """Destination/group/partition facade over a :class:`Broker`."""

    def __init__(self, broker: Broker) -> None:
        self.broker = broker

    # ------------------------------------------------------------------
    # Plain destinations (topic exchange per destination)
    # ------------------------------------------------------------------
    def declare_destination(self, destination: str) -> None:
        self.broker.declare_exchange(destination, "topic")

    def subscribe(self, destination: str, consumer_id: str,
                  callback: ConsumerFn, *, group: str | None = None,
                  manual_ack: bool = False) -> str:
        """Subscribe to a destination; returns the backing queue name.

        With a ``group``, members compete on the shared queue
        ``destination.group``.  Without one, the subscriber gets its own
        ``destination.anonymous.<n>`` queue (publish-subscribe).
        ``manual_ack`` subscribers must acknowledge deliveries through
        the broker (at-least-once redelivery on crash).
        """
        self.declare_destination(destination)
        if group is not None:
            queue_name = f"{destination}.{group}"
        else:
            queue_name = f"{destination}.anonymous.{next(_anon_ids)}"
        new_queue = queue_name not in self.broker.queue_names()
        self.broker.declare_queue(queue_name)
        if new_queue:
            self.broker.bind(destination, queue_name, "#")
        self.broker.consume(queue_name, consumer_id, callback,
                            manual_ack=manual_ack)
        return queue_name

    def unsubscribe(self, queue_name: str, consumer_id: str, *,
                    delete_queue: bool = False) -> int:
        """Detach a consumer; returns messages destroyed with the queue
        (always 0 unless ``delete_queue`` drops a non-empty queue)."""
        self.broker.cancel_consumer(queue_name, consumer_id)
        if delete_queue:
            return self.broker.delete_queue(queue_name)
        return 0

    def send(self, destination: str, payload: Any, *, sender: str = "",
             headers: Mapping[str, Any] | None = None,
             routing_key: str | None = None) -> int:
        """Publish to a destination; returns the number of queues hit."""
        message = Message(routing_key=routing_key or destination,
                          payload=payload, headers=headers or {},
                          sender=sender)
        return self.broker.publish(destination, message)

    # ------------------------------------------------------------------
    # Partitioned destinations (direct exchange, one queue per index)
    # ------------------------------------------------------------------
    def declare_partitioned(self, destination: str, partitions: int) -> None:
        if partitions <= 0:
            raise BrokerError(
                f"partitioned destination needs >= 1 partitions, got {partitions}")
        self.broker.declare_exchange(destination, "direct")
        for index in range(partitions):
            queue_name = self.partition_queue(destination, index)
            new_queue = queue_name not in self.broker.queue_names()
            self.broker.declare_queue(queue_name)
            if new_queue:
                self.broker.bind(destination, queue_name, str(index))

    @staticmethod
    def partition_queue(destination: str, index: int) -> str:
        return f"{destination}-{index}"

    def subscribe_partition(self, destination: str, index: int,
                            consumer_id: str, callback: ConsumerFn, *,
                            manual_ack: bool = False) -> str:
        queue_name = self.partition_queue(destination, index)
        self.broker.consume(queue_name, consumer_id, callback,
                            manual_ack=manual_ack)
        return queue_name

    def send_to_partition(self, destination: str, index: int, payload: Any, *,
                          sender: str = "",
                          headers: Mapping[str, Any] | None = None) -> int:
        message = Message(routing_key=str(index), payload=payload,
                          headers=headers or {}, sender=sender)
        return self.broker.publish(destination, message)
