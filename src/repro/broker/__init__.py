"""In-process AMQP-style message broker substrate.

Replaces RabbitMQ + Spring Cloud Stream from the thesis deployment with
semantically equivalent in-process components:

- :mod:`~repro.broker.message` — messages and deliveries,
- :mod:`~repro.broker.exchange` — direct/topic/fanout exchanges and
  AMQP topic pattern matching,
- :mod:`~repro.broker.queue` — queues with round-robin competing
  consumers,
- :mod:`~repro.broker.broker` — the broker itself (synchronous or
  simulator-scheduled delivery),
- :mod:`~repro.broker.channels` — Spring-Cloud-Stream-style
  destinations, consumer groups and partitioned destinations.
"""

from .broker import Broker
from .channels import ChannelLayer
from .exchange import Binding, Exchange, topic_matches
from .message import MESSAGE_OVERHEAD_BYTES, Delivery, Message
from .queue import Consumer, MessageQueue

__all__ = [
    "Broker",
    "ChannelLayer",
    "Binding",
    "Exchange",
    "topic_matches",
    "Delivery",
    "Message",
    "MESSAGE_OVERHEAD_BYTES",
    "Consumer",
    "MessageQueue",
]
