"""The simulated-cluster runtime: pods + engine + HPA on one event loop.

This module is the substitute for the thesis's deployment substrate
(Docker containers on Kubernetes/GKE).  It runs a
:class:`~repro.core.biclique.BicliqueEngine` inside the discrete-event
simulator with:

- one :class:`~repro.cluster.pod.Pod` per joiner unit and per router,
  each serving its deliveries serially through a FIFO executor (so
  queueing delay and CPU saturation emerge naturally),
- a :class:`~repro.cluster.metrics_server.MetricsServer` sampling pod
  CPU/memory on a fixed cadence,
- optional :class:`~repro.cluster.autoscaler.HorizontalPodAutoscaler`
  control loops per joiner side, whose decisions are applied through
  the engine's migration-free ``scale_out``/``scale_in``,
- a periodic reaper finalising drained (scaled-in) units,
- a timeline recorder producing exactly the series thesis Figures 20/21
  plot: input rate, replica count and the scaled resource metric over
  the experiment hour.
"""

from __future__ import annotations

import logging
from collections import deque
from dataclasses import dataclass, field, replace
from typing import Callable, Iterator

from ..core.batching import BatchingConfig
from ..core.biclique import BicliqueConfig, BicliqueEngine, EngineInstrumentation
from ..core.joiner import Joiner
from ..core.predicates import JoinPredicate
from ..core.router import Router
from ..core.tuples import StreamTuple
from ..errors import ClusterError
from ..metrics.memory import MB, JvmHeapModel
from ..obs.registry import MetricsRegistry
from ..obs.stages import StageBreakdown, compute_stage_breakdown
from ..obs.trace import NOOP_TRACER, NoopTracer, Tracer
from ..overload.accounting import OverloadReport
from ..overload.manager import DEFER, SHED, OverloadConfig, OverloadManager
from ..simulation.faults import CrashFault, FaultPlan
from ..simulation.kernel import Simulator
from ..simulation.network import FixedDelayNetwork, NetworkModel
from ..broker.broker import Broker
from ..broker.message import Delivery
from .autoscaler import HorizontalPodAutoscaler, HpaConfig, HpaDecision
from .metrics_server import MetricsServer
from .pod import Pod
from .resources import CostModel, ResourceSpec
from .supervisor import RestartSupervisor, SupervisorConfig

logger = logging.getLogger(__name__)


# ---------------------------------------------------------------------------
# Serial pod execution
# ---------------------------------------------------------------------------
class PodExecutor:
    """FIFO serial executor binding work items to a pod's CPU.

    Work functions are called with the simulated start time and must
    return the CPU service seconds they consumed; the executor then
    blocks the pod for the corresponding wall time (respecting the CPU
    limit) before starting the next item.
    """

    def __init__(self, sim: Simulator, pod: Pod) -> None:
        self.sim = sim
        self.pod = pod
        self._queue: deque[Callable[[float], float]] = deque()
        self._scheduled = False
        self.dead = False
        #: Work items discarded because the pod was killed.
        self.killed_work = 0

    def submit(self, work: Callable[[float], float]) -> None:
        if self.dead:
            # The pod crashed: whatever this work was, it dies with the
            # process.  Unacked deliveries are the broker's problem now.
            self.killed_work += 1
            return
        self._queue.append(work)
        self._kick()

    @property
    def queued(self) -> int:
        return len(self._queue)

    def kill(self) -> int:
        """Crash the pod: queued work is lost, nothing runs afterwards.

        Returns the number of discarded work items.
        """
        self.dead = True
        discarded = len(self._queue)
        self.killed_work += discarded
        self._queue.clear()
        return discarded

    def _kick(self) -> None:
        if self._scheduled or not self._queue:
            return
        self._scheduled = True
        start = max(self.sim.now, self.pod.free_at)
        self.sim.schedule_at(start, self._run,
                             label=f"pod-exec {self.pod.name}")

    def _run(self) -> None:
        self._scheduled = False
        if self.dead or not self._queue:
            return
        work = self._queue.popleft()
        service = work(self.sim.now)
        self.pod.schedule_work(self.sim.now, service)
        self._kick()


# ---------------------------------------------------------------------------
# Engine instrumentation: one pod per component
# ---------------------------------------------------------------------------
@dataclass
class _JoinerCounters:
    stored: int
    probes: int
    comparisons: int
    results: int
    punctuations: int


def _joiner_counters(joiner: Joiner) -> _JoinerCounters:
    return _JoinerCounters(
        stored=joiner.stats.tuples_stored,
        probes=joiner.stats.probes_processed,
        comparisons=joiner.index.stats.comparisons,
        results=joiner.stats.results_emitted,
        punctuations=joiner.stats.punctuations_received,
    )


class PodInstrumentation(EngineInstrumentation):
    """Creates a pod per engine component and routes work through it."""

    def __init__(self, sim: Simulator, metrics: MetricsServer,
                 cost: CostModel, joiner_spec: ResourceSpec,
                 router_spec: ResourceSpec,
                 heap_factory: Callable[[], JvmHeapModel] | None = None) -> None:
        self.sim = sim
        self.metrics = metrics
        self.cost = cost
        self.joiner_spec = joiner_spec
        self.router_spec = router_spec
        self.heap_factory = heap_factory or JvmHeapModel
        self.pods: dict[str, Pod] = {}
        self.executors: dict[str, PodExecutor] = {}

    # -- pod lifecycle ------------------------------------------------------
    def _new_pod(self, name: str, spec: ResourceSpec,
                 live_bytes_fn=None) -> PodExecutor:
        if name in self.pods:
            raise ClusterError(f"pod {name!r} already exists")
        pod = Pod(name, spec, heap=self.heap_factory())
        pod.created_at = self.sim.now
        self.pods[name] = pod
        executor = PodExecutor(self.sim, pod)
        self.executors[name] = executor
        self.metrics.register_pod(pod, live_bytes_fn,
                                  backlog_fn=lambda: executor.queued)
        return executor

    def _remove_pod(self, name: str) -> None:
        self.pods.pop(name, None)
        self.executors.pop(name, None)
        self.metrics.unregister_pod(name)

    @staticmethod
    def joiner_pod_name(unit_id: str) -> str:
        return f"joiner-{unit_id}"

    @staticmethod
    def router_pod_name(router_id: str) -> str:
        return f"router-{router_id}"

    # -- EngineInstrumentation hooks ---------------------------------------
    def wrap_joiner(self, joiner: Joiner, callback):
        executor = self._new_pod(self.joiner_pod_name(joiner.unit_id),
                                 self.joiner_spec,
                                 live_bytes_fn=lambda: joiner.live_bytes)

        def wrapped(delivery: Delivery) -> None:
            def work(start: float) -> float:
                before = _joiner_counters(joiner)
                callback(replace(delivery, time=start))
                after = _joiner_counters(joiner)
                return self.cost.joiner_work(
                    stored=after.stored - before.stored,
                    probes=after.probes - before.probes,
                    comparisons=after.comparisons - before.comparisons,
                    results=after.results - before.results,
                    punctuations=after.punctuations - before.punctuations,
                )

            executor.submit(work)

        return wrapped

    def wrap_router(self, router: Router, callback):
        executor = self._new_pod(self.router_pod_name(router.router_id),
                                 self.router_spec)

        def wrapped(delivery: Delivery) -> None:
            def work(start: float) -> float:
                callback(replace(delivery, time=start))
                return self.cost.router_work(tuples=1)

            executor.submit(work)

        return wrapped

    def on_joiner_removed(self, joiner: Joiner) -> None:
        self._remove_pod(self.joiner_pod_name(joiner.unit_id))

    def on_joiner_crashed(self, joiner: Joiner) -> None:
        self._crash_pod(self.joiner_pod_name(joiner.unit_id))

    def on_router_crashed(self, router: Router) -> None:
        self._crash_pod(self.router_pod_name(router.router_id))

    def _crash_pod(self, name: str) -> None:
        """Kill a pod's executor so queued deliveries die with it, then
        free its name for the restarted incarnation's fresh pod."""
        executor = self.executors.get(name)
        if executor is not None:
            discarded = executor.kill()
            if discarded:
                logger.info("pod %s crashed with %d queued work item(s)",
                            name, discarded)
        self._remove_pod(name)

    # -- queries --------------------------------------------------------------
    def joiner_pod_names(self, unit_ids: list[str]) -> list[str]:
        return [self.joiner_pod_name(uid) for uid in unit_ids
                if self.joiner_pod_name(uid) in self.pods]


# ---------------------------------------------------------------------------
# The simulated cluster
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class ClusterConfig:
    """Deployment-level knobs of the simulated cluster."""

    joiner_spec: ResourceSpec = ResourceSpec()
    router_spec: ResourceSpec = ResourceSpec(cpu_request=0.25, cpu_limit=1.0)
    cost_model: CostModel = CostModel()
    network_latency: float = 0.002
    metrics_interval: float = 15.0
    reap_interval: float = 30.0
    timeline_interval: float = 30.0


@dataclass(frozen=True)
class TimelinePoint:
    """One sample of the Figure 20/21 series."""

    time: float
    input_rate: float
    r_replicas: int
    s_replicas: int
    cpu_utilisation_r: float | None
    cpu_utilisation_s: float | None
    memory_mapped_mb_r: float | None
    memory_utilisation_r: float | None
    results_so_far: int


@dataclass
class ClusterReport:
    """Outcome of a simulated-cluster run."""

    duration: float
    tuples_ingested: int
    results: int
    timeline: list[TimelinePoint] = field(default_factory=list)
    hpa_decisions: dict[str, list[HpaDecision]] = field(default_factory=dict)
    #: (time, side, action, count) — scaling actions, plus ``"drop"``
    #: entries surfacing messages destroyed with a reaped unit's queue.
    scale_events: list[tuple[float, str, str, int]] = field(default_factory=list)
    #: (time, target, event) — executed chaos-schedule crash/restart.
    fault_events: list[tuple[float, str, str]] = field(default_factory=list)
    #: Supervisor restart counters per crashed target.
    restarts: dict[str, int] = field(default_factory=dict)
    #: Final :class:`~repro.obs.registry.MetricsRegistry` snapshot —
    #: flat ``name{labels} -> value``, collected once at end of run.
    #: Deliberately tracer-independent: two runs differing only in
    #: tracing produce identical snapshots.
    metrics: dict[str, float] = field(default_factory=dict)
    #: Per-stage latency breakdown (``None`` unless the run was traced).
    stages: StageBreakdown | None = None
    #: Overload-layer summary (``None`` unless backpressure was enabled).
    overload: OverloadReport | None = None

    def replicas_series(self, side: str) -> list[tuple[float, int]]:
        attr = "r_replicas" if side == "R" else "s_replicas"
        return [(p.time, getattr(p, attr)) for p in self.timeline]


class SimulatedCluster:
    """A biclique deployment on the simulated Kubernetes-like cluster."""

    def __init__(self, biclique_config: BicliqueConfig,
                 predicate: JoinPredicate,
                 cluster_config: ClusterConfig | None = None,
                 *, hpa: dict[str, HpaConfig] | None = None,
                 network: NetworkModel | None = None,
                 heap_factory: Callable[[], JvmHeapModel] | None = None,
                 faults: FaultPlan | None = None,
                 supervisor: SupervisorConfig | None = None,
                 tracer: NoopTracer = NOOP_TRACER,
                 overload: OverloadConfig | None = None,
                 batching: BatchingConfig | None = None) -> None:
        self.cluster_config = cluster_config or ClusterConfig()
        self.sim = Simulator()
        self.network = network or FixedDelayNetwork(
            self.cluster_config.network_latency)
        self.broker = Broker(self.sim, self.network)
        #: Backpressure / admission control (None = unbounded legacy).
        self.overload: OverloadManager | None = None
        if overload is not None:
            self.overload = OverloadManager(
                overload, self.broker,
                scheduler=lambda fn: self.sim.schedule_after(
                    0.0, fn, label="credit-wake"),
                clock=lambda: self.sim.now,
                tracer=tracer)
        self.faults = faults or FaultPlan()
        self.supervisor = RestartSupervisor(supervisor)
        self.metrics = MetricsServer(self.cluster_config.metrics_interval)
        #: Causal tracer threaded through the engine (no-op by default).
        self.tracer = tracer
        #: Unified metrics registry every component publishes into.
        self.registry = MetricsRegistry()
        self.instrumentation = PodInstrumentation(
            self.sim, self.metrics, self.cluster_config.cost_model,
            self.cluster_config.joiner_spec, self.cluster_config.router_spec,
            heap_factory=heap_factory)
        self.engine = BicliqueEngine(biclique_config, predicate,
                                     broker=self.broker,
                                     instrumentation=self.instrumentation,
                                     tracer=tracer,
                                     overload=self.overload,
                                     batching=batching)
        # Linger timers ride the simulation clock so batched runs stay
        # deterministic (the returned Event is duck-typed cancellable).
        self.engine.set_batch_scheduler(
            lambda delay, fn: self.sim.schedule_after(
                delay, fn, label="batch-linger"))
        self.autoscalers: dict[str, HorizontalPodAutoscaler] = {
            side: HorizontalPodAutoscaler(config)
            for side, config in (hpa or {}).items()}
        self._rate_fn: Callable[[float], float] = lambda t: 0.0
        self._ingested = 0
        self.report = ClusterReport(duration=0.0, tuples_ingested=0, results=0)
        # Pull-model publication: every collect() refreshes the registry
        # from the live components (engine covers broker/routers/joiners).
        self.registry.register_collector(
            lambda: self.engine.export_metrics(self.registry))
        self.registry.register_collector(
            lambda: self.sim.export_metrics(self.registry))
        self.registry.register_collector(
            lambda: self.metrics.export_metrics(self.registry))
        self.registry.register_collector(self._export_hpa_metrics)

    def _export_hpa_metrics(self) -> None:
        for side, hpa in self.autoscalers.items():
            hpa.export_metrics(self.registry, side)

    # ------------------------------------------------------------------
    # Periodic control loops
    # ------------------------------------------------------------------
    def _sample_metrics(self) -> None:
        self.metrics.sample(self.sim.now)
        if self.overload is not None:
            # Straggler detection piggybacks on the metrics tick so the
            # detector adds no events of its own to the simulation.
            self.overload.observe(self.sim.now)

    def _run_autoscaler(self, side: str) -> None:
        hpa = self.autoscalers[side]
        active = self.engine.groups[side].active_units()
        pod_names = self.instrumentation.joiner_pod_names(active)
        mean = self.metrics.mean_utilisation(pod_names, hpa.config.metric)
        if (self.overload is not None and hpa.config.metric == "backlog"
                and mean is not None):
            # A straggler's lag lives in its broker inbox, not just its
            # pod executor; fold it into the backlog scaling signal.
            mean += self.overload.mean_inbox_depth(side)
        decision = hpa.evaluate(self.sim.now, len(active), mean)
        if decision.action == "scale-out":
            added = self.engine.scale_out(
                side, decision.desired_replicas - decision.current_replicas,
                now=self.sim.now)
            self.report.scale_events.append(
                (self.sim.now, side, "out", len(added)))
        elif decision.action == "scale-in":
            for _ in range(decision.current_replicas
                           - decision.desired_replicas):
                self.engine.scale_in(side, now=self.sim.now)
                self.report.scale_events.append((self.sim.now, side, "in", 1))

    def _reap(self) -> None:
        self.engine.reap_drained(now=self.sim.now)
        for unit_id, dropped in self.engine.last_reap_drops.items():
            logger.warning("scale-in reap of %s dropped %d undelivered "
                           "message(s)", unit_id, dropped)
            self.report.scale_events.append(
                (self.sim.now, unit_id[0], "drop", dropped))

    # ------------------------------------------------------------------
    # Chaos-schedule execution
    # ------------------------------------------------------------------
    def _inject_crash(self, fault: CrashFault) -> None:
        target = fault.target
        if target in self.engine.joiners:
            self.engine.crash_unit(target)
        elif any(r.router_id == target for r in self.engine.routers):
            self.engine.crash_router(target)
        else:
            # Already down, scaled away, or never existed: a chaos plan
            # is declarative, not clairvoyant — record and move on.
            logger.warning("fault target %s not crashable at t=%.3f",
                           target, self.sim.now)
            self.report.fault_events.append(
                (self.sim.now, target, "skipped"))
            return
        self.report.fault_events.append((self.sim.now, target, "crash"))
        delay = fault.outage + self.supervisor.next_backoff(target)
        self.sim.schedule_after(delay, lambda: self._restart(target),
                                label=f"restart {target}")

    def _restart(self, target: str) -> None:
        if target in self.engine._crashed:
            self.engine.restart_unit(target)
        elif target in self.engine._crashed_routers:
            self.engine.restart_router(target)
        else:  # restarted by other means in the meantime
            return
        self.report.fault_events.append((self.sim.now, target, "restart"))

    def _record_timeline(self) -> None:
        engine = self.engine
        r_active = engine.groups["R"].active_units()
        s_active = engine.groups["S"].active_units()
        r_pods = self.instrumentation.joiner_pod_names(r_active)
        s_pods = self.instrumentation.joiner_pod_names(s_active)
        mem_mapped = None
        samples = [self.metrics.latest(name) for name in r_pods]
        samples = [s for s in samples if s is not None]
        if samples:
            mem_mapped = sum(s.memory_mapped_bytes for s in samples) / len(samples) / MB
        self.report.timeline.append(TimelinePoint(
            time=self.sim.now,
            input_rate=self._rate_fn(self.sim.now),
            r_replicas=len(r_active),
            s_replicas=len(s_active),
            cpu_utilisation_r=self.metrics.mean_utilisation(r_pods, "cpu"),
            cpu_utilisation_s=self.metrics.mean_utilisation(s_pods, "cpu"),
            memory_mapped_mb_r=mem_mapped,
            memory_utilisation_r=self.metrics.mean_utilisation(r_pods, "memory"),
            results_so_far=len(engine.results),
        ))

    # ------------------------------------------------------------------
    # Workload pump
    # ------------------------------------------------------------------
    def _pump(self, arrivals: Iterator[StreamTuple], duration: float) -> None:
        try:
            t = next(arrivals)
        except StopIteration:
            return
        if t.ts >= duration:
            return
        state = {"offered": False, "attempts": 0}

        def ingest() -> None:
            manager = self.overload
            if manager is not None:
                if not state["offered"]:
                    state["offered"] = True
                    manager.record_offered(t)
                verdict = manager.admission_decision(t)
                if verdict == DEFER:
                    # Producer blocked: retry later *without* pumping the
                    # next arrival, so the whole source stalls and the
                    # backpressure surfaces as rising admission delay.
                    state["attempts"] += 1
                    manager.record_deferral(t, self.sim.now,
                                            state["attempts"])
                    # Watermarks must keep advancing while the source
                    # is stalled, or buffered joiner work (and the
                    # credit grants it produces) would never release.
                    self.engine.maintain_punctuations(self.sim.now)
                    self.sim.schedule_after(manager.config.admission_retry,
                                            ingest, label="admission-retry")
                    return
                if verdict == SHED:
                    manager.record_shed(t, self.sim.now)
                    self._pump(arrivals, duration)
                    return
                manager.record_admitted(t, self.sim.now)
            self.engine.ingest(t)
            self._ingested += 1
            self._pump(arrivals, duration)

        # A deferral stall can push the clock past the next arrival's
        # timestamp; the blocked producer then offers it as soon as it
        # can (max), and the gap is visible as admission delay.
        self.sim.schedule_at(max(t.ts, self.sim.now), ingest, label="ingest")

    # ------------------------------------------------------------------
    # Run
    # ------------------------------------------------------------------
    def run(self, arrivals: Iterator[StreamTuple], duration: float,
            rate_fn: Callable[[float], float] | None = None) -> ClusterReport:
        """Run the cluster for ``duration`` simulated seconds.

        Args:
            arrivals: lazy, time-ordered tuple arrival sequence.
            duration: simulated experiment length in seconds.
            rate_fn: the nominal input rate over time (only used to
                annotate the timeline, e.g. a RateProfile's ``rate``).
        """
        if rate_fn is not None:
            self._rate_fn = rate_fn
        cc = self.cluster_config
        cancels = [
            self.sim.schedule_periodic(cc.metrics_interval,
                                       self._sample_metrics,
                                       label="metrics-sample"),
            self.sim.schedule_periodic(cc.reap_interval, self._reap,
                                       label="reap-drained"),
            self.sim.schedule_periodic(cc.timeline_interval,
                                       self._record_timeline,
                                       label="timeline"),
        ]
        for side, hpa in self.autoscalers.items():
            cancels.append(self.sim.schedule_periodic(
                hpa.config.period, lambda side=side: self._run_autoscaler(side),
                label=f"hpa-{side}"))
        for fault in self.faults:
            if fault.at >= duration:
                logger.warning("fault at t=%.3f is beyond the %.3fs run; "
                               "skipping", fault.at, duration)
                continue
            self.sim.schedule_at(fault.at,
                                 lambda f=fault: self._inject_crash(f),
                                 label=f"crash {fault.target}")

        self._pump(arrivals, duration)
        self.sim.run(until=duration)
        for cancel in cancels:
            cancel()
        self.sim.run()  # drain in-flight deliveries and pod work
        if self.engine.flush_transport():
            self.sim.run()  # deliver the final partial batches
        self.engine.finish()

        self.report.duration = duration
        self.report.tuples_ingested = self._ingested
        self.report.results = len(self.engine.results)
        self.report.hpa_decisions = {
            side: hpa.decisions for side, hpa in self.autoscalers.items()}
        self.report.restarts = dict(self.supervisor.restart_counts)
        self.registry.collect()
        self.report.metrics = self.registry.snapshot()
        if isinstance(self.tracer, Tracer):
            self.report.stages = compute_stage_breakdown(self.tracer)
        if self.overload is not None:
            self.report.overload = self.overload.report()
        return self.report
