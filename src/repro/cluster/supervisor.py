"""Pod restart supervision with exponential backoff.

Kubernetes restarts crashed containers under an exponentially growing
backoff (CrashLoopBackOff).  :class:`RestartSupervisor` reproduces that
policy for the simulated cluster: the first restart of a target waits
``base_backoff`` seconds (on top of the fault's configured outage),
each subsequent restart of the *same* target multiplies the wait by
``multiplier`` up to ``max_backoff``, and per-target restart counters
are kept for the run report.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ClusterError


@dataclass(frozen=True)
class SupervisorConfig:
    """Restart policy knobs (Kubernetes-like CrashLoopBackOff)."""

    base_backoff: float = 1.0
    multiplier: float = 2.0
    max_backoff: float = 300.0

    def __post_init__(self) -> None:
        if self.base_backoff <= 0:
            raise ClusterError(
                f"base_backoff must be positive, got {self.base_backoff!r}")
        if self.multiplier < 1.0:
            raise ClusterError(
                f"multiplier must be >= 1, got {self.multiplier!r}")
        if self.max_backoff < self.base_backoff:
            raise ClusterError("max_backoff must be >= base_backoff")


class RestartSupervisor:
    """Tracks restarts per target and computes each one's backoff."""

    def __init__(self, config: SupervisorConfig | None = None) -> None:
        self.config = config or SupervisorConfig()
        #: Completed restarts per target id.
        self.restart_counts: dict[str, int] = {}

    def next_backoff(self, target: str) -> float:
        """Backoff for ``target``'s next restart; bumps its counter."""
        cfg = self.config
        previous = self.restart_counts.get(target, 0)
        self.restart_counts[target] = previous + 1
        return min(cfg.base_backoff * cfg.multiplier ** previous,
                   cfg.max_backoff)

    @property
    def total_restarts(self) -> int:
        return sum(self.restart_counts.values())
