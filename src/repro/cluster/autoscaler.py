"""The Horizontal Pod Autoscaler (thesis §5.2, Figure 19).

Implements the Kubernetes HPA control loop: every ``period`` seconds it
computes the mean utilisation of the target deployment's pods for the
configured metric and produces the desired replica count

    desired = ceil(current * mean_utilisation / target)

clamped to ``[min_replicas, max_replicas]``, with the standard
stabilisation guards (a tolerance band around the target so tiny
deviations don't flap the deployment, and a scale-down cooldown so one
low sample doesn't immediately kill pods).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import ConfigurationError


@dataclass(frozen=True)
class HpaConfig:
    """Configuration of one HorizontalPodAutoscaler object.

    Mirrors the thesis YAML: ``metrics.resource.name`` (cpu/memory),
    ``targetAverageUtilization``, ``minReplicas``, ``maxReplicas``.

    Attributes:
        metric: ``"cpu"``, ``"memory"`` (resource metrics, target is a
            utilisation fraction of the pod request) or ``"backlog"``
            (custom metric: target is a raw average queued-work depth,
            like the K8s custom-metrics ``targetAverageValue``).
        target_utilisation: e.g. 0.80 for the thesis CPU experiment,
            0.85 for the memory experiment, or an absolute queue depth
            for the backlog metric.
        min_replicas / max_replicas: replica clamp (thesis: 1 and 3).
        period: control loop period in seconds (default 30, as in the
            thesis description of the HPA control loop).
        tolerance: relative dead-band around the target (K8s default
            0.1): no action while |ratio - 1| <= tolerance.
        scale_down_cooldown: seconds since the last scale *up* (or
            previous scale-down) before removing replicas (K8s
            stabilisation window, default 300 s).
    """

    metric: str = "cpu"
    target_utilisation: float = 0.80
    min_replicas: int = 1
    max_replicas: int = 3
    period: float = 30.0
    tolerance: float = 0.1
    scale_down_cooldown: float = 300.0

    def __post_init__(self) -> None:
        if self.metric not in ("cpu", "memory", "backlog"):
            raise ConfigurationError(f"unknown HPA metric {self.metric!r}")
        if self.target_utilisation <= 0:
            raise ConfigurationError("target utilisation must be positive")
        if not 1 <= self.min_replicas <= self.max_replicas:
            raise ConfigurationError(
                "need 1 <= min_replicas <= max_replicas, got "
                f"{self.min_replicas}..{self.max_replicas}")
        if self.period <= 0:
            raise ConfigurationError("HPA period must be positive")


@dataclass
class HpaDecision:
    """Outcome of one control-loop evaluation."""

    time: float
    observed_utilisation: float | None
    current_replicas: int
    desired_replicas: int

    @property
    def action(self) -> str:
        if self.desired_replicas > self.current_replicas:
            return "scale-out"
        if self.desired_replicas < self.current_replicas:
            return "scale-in"
        return "none"


class HorizontalPodAutoscaler:
    """The HPA decision logic, decoupled from the event loop.

    The cluster runtime calls :meth:`evaluate` every ``config.period``
    seconds with the current replica count and the sampled mean
    utilisation, and applies the returned desired count.
    """

    def __init__(self, config: HpaConfig) -> None:
        self.config = config
        self.decisions: list[HpaDecision] = []
        self._last_scale_change: float = float("-inf")

    def evaluate(self, now: float, current_replicas: int,
                 mean_utilisation: float | None) -> HpaDecision:
        """One control-loop iteration; records and returns the decision."""
        cfg = self.config
        desired = current_replicas

        if mean_utilisation is not None and current_replicas > 0:
            ratio = mean_utilisation / cfg.target_utilisation
            if abs(ratio - 1.0) > cfg.tolerance:
                desired = math.ceil(current_replicas * ratio)
            desired = min(max(desired, cfg.min_replicas), cfg.max_replicas)

            if desired < current_replicas:
                if now - self._last_scale_change < cfg.scale_down_cooldown:
                    desired = current_replicas  # stabilisation window
        else:
            desired = min(max(desired, cfg.min_replicas), cfg.max_replicas)

        decision = HpaDecision(
            time=now,
            observed_utilisation=mean_utilisation,
            current_replicas=current_replicas,
            desired_replicas=desired,
        )
        self.decisions.append(decision)
        if desired != current_replicas:
            self._last_scale_change = now
        return decision

    def export_metrics(self, registry, side: str = "") -> None:
        """Publish control-loop totals into a metrics registry."""
        labels = {"side": side} if side else None
        registry.counter("repro_hpa_evaluations_total",
                         "HPA control-loop iterations run.",
                         labels).set_total(len(self.decisions))
        registry.counter("repro_hpa_scale_actions_total",
                         "Evaluations that changed the replica count.",
                         labels).set_total(
            sum(1 for d in self.decisions if d.action != "none"))
        if self.decisions:
            last = self.decisions[-1]
            registry.gauge("repro_hpa_desired_replicas",
                           "Most recent desired replica count.",
                           labels).set(last.desired_replicas)
