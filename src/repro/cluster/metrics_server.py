"""A Heapster-like metrics server.

The Horizontal Pod Autoscaler does not look at instantaneous load; it
queries a metrics pipeline that *samples* pod resource usage at a fixed
cadence.  :class:`MetricsServer` reproduces that indirection: every
``sample_interval`` seconds it computes, for each registered pod, the
CPU utilisation over the elapsed interval and the current memory
utilisation, and stores them as "the latest sample".  The HPA control
loop then consumes these (slightly stale) values — the staleness is
part of why real autoscalers react with a lag, visible in the thesis
Figure 20/21 timelines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..errors import ClusterError
from .pod import Pod


@dataclass(frozen=True)
class PodSample:
    """One sampled observation of a pod's resource usage."""

    time: float
    cpu_utilisation: float
    memory_utilisation: float
    memory_mapped_bytes: int
    backlog: int = 0


class MetricsServer:
    """Samples pod resource usage on demand from a periodic driver."""

    def __init__(self, sample_interval: float = 15.0) -> None:
        if sample_interval <= 0:
            raise ClusterError("sample interval must be positive")
        self.sample_interval = sample_interval
        self._pods: dict[str, Pod] = {}
        self._live_bytes_fn: dict[str, Callable[[], int]] = {}
        self._backlog_fn: dict[str, Callable[[], int]] = {}
        self._latest: dict[str, PodSample] = {}
        self._last_sample_time = 0.0

    # -- registry ---------------------------------------------------------
    def register_pod(self, pod: Pod,
                     live_bytes_fn: Callable[[], int] | None = None,
                     backlog_fn: Callable[[], int] | None = None) -> None:
        """Track a pod.

        Args:
            live_bytes_fn: reports the pod's live data-set bytes
                (drives the memory metric).
            backlog_fn: reports the pod's queued-work depth (drives the
                custom "backlog" metric — the thesis Figure 19 custom
                metrics API pathway).

        Raises:
            ClusterError: if the pod is already registered, or either
                callback is given but not callable (a raw value here
                would silently freeze the metric at registration time).
        """
        if pod.name in self._pods:
            raise ClusterError(f"pod {pod.name!r} already registered")
        if live_bytes_fn is not None and not callable(live_bytes_fn):
            raise ClusterError(
                f"live_bytes_fn for pod {pod.name!r} must be callable, "
                f"got {live_bytes_fn!r}")
        if backlog_fn is not None and not callable(backlog_fn):
            raise ClusterError(
                f"backlog_fn for pod {pod.name!r} must be callable, "
                f"got {backlog_fn!r}")
        self._pods[pod.name] = pod
        self._live_bytes_fn[pod.name] = live_bytes_fn or (lambda: 0)
        self._backlog_fn[pod.name] = backlog_fn or (lambda: 0)

    def unregister_pod(self, name: str) -> None:
        self._pods.pop(name, None)
        self._live_bytes_fn.pop(name, None)
        self._backlog_fn.pop(name, None)
        self._latest.pop(name, None)

    @property
    def pod_names(self) -> list[str]:
        return sorted(self._pods)

    # -- sampling ------------------------------------------------------------
    def sample(self, now: float) -> None:
        """Take one sample of every registered pod."""
        t0 = self._last_sample_time
        for name, pod in self._pods.items():
            live = self._live_bytes_fn[name]()
            mapped = pod.update_memory(live)
            cpu = pod.cpu_utilisation(max(t0, pod.created_at), now)
            self._latest[name] = PodSample(
                time=now,
                cpu_utilisation=cpu,
                memory_utilisation=pod.memory_utilisation(),
                memory_mapped_bytes=mapped,
                backlog=int(self._backlog_fn[name]()),
            )
            pod.prune_segments(before=now)
        self._last_sample_time = now

    # -- queries ---------------------------------------------------------------
    def latest(self, pod_name: str) -> PodSample | None:
        return self._latest.get(pod_name)

    def mean_utilisation(self, pod_names: list[str], metric: str) -> float | None:
        """Mean metric value over pods with samples; ``None`` if no data.

        ``cpu`` and ``memory`` are utilisations relative to the pod
        request; ``backlog`` is a raw average value (queued work items),
        matching the Kubernetes resource-metric vs. custom-metric split.
        """
        values = []
        for name in pod_names:
            sample = self._latest.get(name)
            if sample is None:
                continue
            if metric == "cpu":
                values.append(sample.cpu_utilisation)
            elif metric == "memory":
                values.append(sample.memory_utilisation)
            elif metric == "backlog":
                values.append(float(sample.backlog))
            else:
                raise ClusterError(f"unknown metric {metric!r}")
        if not values:
            return None
        return sum(values) / len(values)

    def export_metrics(self, registry) -> None:
        """Publish the latest pod samples into a metrics registry."""
        for name in self.pod_names:
            sample = self._latest.get(name)
            if sample is None:
                continue
            labels = {"pod": name}
            registry.gauge("repro_pod_cpu_utilisation",
                           "Sampled CPU utilisation relative to request.",
                           labels).set(sample.cpu_utilisation)
            registry.gauge("repro_pod_memory_utilisation",
                           "Sampled memory utilisation relative to request.",
                           labels).set(sample.memory_utilisation)
            registry.gauge("repro_pod_backlog",
                           "Sampled queued-work depth (custom metric).",
                           labels).set(sample.backlog)
