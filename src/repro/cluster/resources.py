"""Resource specifications and the CPU cost model.

The thesis cluster leases ``n1-standard-1`` VMs (1 vCPU, 3.75 GB RAM)
and sizes pods by Kubernetes *resource requests*; HPA utilisation is
measured **relative to the request**, which is why the thesis reports
~145 % CPU utilisation — usage may exceed the request up to the limit.

:class:`CostModel` converts the joiner/router operation counts into CPU
service seconds.  Absolute values are calibration knobs (our substrate
is a simulator, not the authors' testbed); experiments depend on the
*ratios* — probing cost grows with comparisons, which grow with window
size and input rate, which is what drives the autoscaler dynamics.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError
from ..metrics.memory import MB


@dataclass(frozen=True)
class ResourceSpec:
    """CPU/memory request and limit of one pod (Kubernetes semantics).

    Attributes:
        cpu_request: cores the scheduler reserves; HPA's denominator.
        cpu_limit: hard cap on usable cores.
        memory_request: bytes reserved; denominator of the memory metric.
        memory_limit: hard byte cap.
    """

    cpu_request: float = 0.5
    cpu_limit: float = 1.0
    memory_request: int = 612 * MB
    memory_limit: int = int(3.75 * 1024) * MB

    def __post_init__(self) -> None:
        if self.cpu_request <= 0 or self.cpu_limit <= 0:
            raise ConfigurationError("cpu request/limit must be positive")
        if self.cpu_request > self.cpu_limit:
            raise ConfigurationError("cpu request cannot exceed limit")
        if self.memory_request <= 0 or self.memory_limit <= 0:
            raise ConfigurationError("memory request/limit must be positive")
        if self.memory_request > self.memory_limit:
            raise ConfigurationError("memory request cannot exceed limit")


@dataclass(frozen=True)
class CostModel:
    """CPU seconds charged per logical operation.

    Attributes:
        route: router work per ingested tuple (stamping + dispatch).
        store: joiner work to insert one tuple into the chained index.
        probe: fixed joiner work per probe (envelope handling, expiry
            checks at sub-index granularity).
        comparison: work per candidate tuple compared during a probe.
        emit: work per produced join result.
        punctuation: work per received punctuation.
    """

    route: float = 20e-6
    store: float = 40e-6
    probe: float = 60e-6
    comparison: float = 2e-6
    emit: float = 10e-6
    punctuation: float = 5e-6

    def scaled(self, factor: float) -> "CostModel":
        """A uniformly scaled copy (used to calibrate experiments)."""
        if factor <= 0:
            raise ConfigurationError(f"scale factor must be positive, got {factor}")
        return CostModel(
            route=self.route * factor,
            store=self.store * factor,
            probe=self.probe * factor,
            comparison=self.comparison * factor,
            emit=self.emit * factor,
            punctuation=self.punctuation * factor,
        )

    def joiner_work(self, *, stored: int = 0, probes: int = 0,
                    comparisons: int = 0, results: int = 0,
                    punctuations: int = 0) -> float:
        """Service seconds for a batch of joiner operations."""
        return (stored * self.store + probes * self.probe
                + comparisons * self.comparison + results * self.emit
                + punctuations * self.punctuation)

    def router_work(self, tuples: int = 0) -> float:
        return tuples * self.route
