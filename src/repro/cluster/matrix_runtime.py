"""Simulated-cluster runtime for the distributed join-matrix engine.

The biclique and the matrix shared one Storm cluster in the paper's
evaluation; :class:`MatrixSimulatedCluster` gives the matrix the same
treatment our :class:`~repro.cluster.runtime.SimulatedCluster` gives
the biclique: one pod per cell and per router, serial CPU service from
the same cost model, the same metrics sampling — so latency and
saturation comparisons between the two models are apples-to-apples
(identical broker, network, cost model; different join topology).

The matrix has no per-side autoscaler here: its scaling unit is a grid
reshape (with migration), which no Kubernetes HPA can express — itself
one of the paper's arguments for the biclique.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Iterator

from ..broker.broker import Broker
from ..broker.message import Delivery
from ..core.batching import BatchingConfig, EnvelopeBatch
from ..core.predicates import JoinPredicate
from ..core.tuples import StreamTuple
from ..errors import ClusterError
from ..matrix.cell import MatrixCell
from ..matrix.distributed import DistributedMatrixEngine
from ..matrix.engine import MatrixConfig
from ..metrics.memory import JvmHeapModel
from ..obs.registry import MetricsRegistry
from ..overload.accounting import OverloadReport
from ..overload.manager import DEFER, SHED, OverloadConfig, OverloadManager
from ..simulation.kernel import Simulator
from ..simulation.network import FixedDelayNetwork, NetworkModel
from .metrics_server import MetricsServer
from .pod import Pod
from .resources import ResourceSpec
from .runtime import ClusterConfig, PodExecutor


@dataclass
class _CellCounters:
    received: int
    comparisons: int
    results: int


def _cell_counters(cell: MatrixCell) -> _CellCounters:
    return _CellCounters(
        received=cell.stats.tuples_received,
        comparisons=cell.comparisons,
        results=cell.stats.results_emitted,
    )


@dataclass
class MatrixClusterReport:
    """Outcome of a simulated matrix-cluster run."""

    duration: float
    tuples_ingested: int
    results: int
    #: Final metrics-registry snapshot (same convention as the
    #: biclique's :class:`~repro.cluster.runtime.ClusterReport`).
    metrics: dict[str, float] | None = None
    #: Overload-layer summary (``None`` unless backpressure was enabled).
    overload: OverloadReport | None = None


class MatrixSimulatedCluster:
    """A distributed join-matrix deployment on the simulated cluster."""

    def __init__(self, config: MatrixConfig, predicate: JoinPredicate,
                 cluster_config: ClusterConfig | None = None, *,
                 routers: int = 1,
                 network: NetworkModel | None = None,
                 heap_factory: Callable[[], JvmHeapModel] | None = None,
                 overload: OverloadConfig | None = None,
                 batching: BatchingConfig | None = None) -> None:
        self.cluster_config = cluster_config or ClusterConfig()
        self.sim = Simulator()
        self.network = network or FixedDelayNetwork(
            self.cluster_config.network_latency)
        self.broker = Broker(self.sim, self.network)
        #: Admission control + bounded queues (no credits: matrix cells
        #: consume auto-ack, so they cannot grant processing credits —
        #: flow control rests on the admission layer alone).
        self.overload: OverloadManager | None = None
        if overload is not None:
            self.overload = OverloadManager(
                overload, self.broker,
                scheduler=lambda fn: self.sim.schedule_after(
                    0.0, fn, label="credit-wake"),
                clock=lambda: self.sim.now)
        self.metrics = MetricsServer(self.cluster_config.metrics_interval)
        self.cost = self.cluster_config.cost_model
        self._heap_factory = heap_factory or JvmHeapModel
        self.pods: dict[str, Pod] = {}
        self.executors: dict[str, PodExecutor] = {}
        self.engine = DistributedMatrixEngine(config, predicate,
                                              broker=self.broker,
                                              routers=routers,
                                              batching=batching)
        #: Unified metrics registry (broker + kernel + pod samples).
        self.registry = MetricsRegistry()
        self.registry.register_collector(
            lambda: self.broker.export_metrics(self.registry))
        self.registry.register_collector(
            lambda: self.sim.export_metrics(self.registry))
        self.registry.register_collector(
            lambda: self.metrics.export_metrics(self.registry))
        if self.overload is not None:
            from ..matrix.distributed import ENTRY_DESTINATION, ROUTER_GROUP
            self.overload.attach_entry(f"{ENTRY_DESTINATION}.{ROUTER_GROUP}")
            self.registry.register_collector(
                lambda: self.overload.export_metrics(self.registry))
        self._wrap_components()
        self._ingested = 0

    # ------------------------------------------------------------------
    # Pod wiring (after the engine subscribed its own callbacks, we
    # re-route each consumer through a pod executor)
    # ------------------------------------------------------------------
    def _new_pod(self, name: str, spec: ResourceSpec,
                 live_bytes_fn=None) -> PodExecutor:
        if name in self.pods:
            raise ClusterError(f"pod {name!r} already exists")
        pod = Pod(name, spec, heap=self._heap_factory())
        pod.created_at = self.sim.now
        self.pods[name] = pod
        executor = PodExecutor(self.sim, pod)
        self.executors[name] = executor
        self.metrics.register_pod(pod, live_bytes_fn,
                                  backlog_fn=lambda: executor.queued)
        return executor

    def _wrap_components(self) -> None:
        engine = self.engine
        # Cells: replace each inbox consumer with a pod-executing one.
        for row_cells in engine.cells:
            for cell in row_cells:
                self._wrap_cell(cell)
        # Routers: same treatment on the entry queue.
        for router in engine.routers:
            self._wrap_router(router)

    def _wrap_cell(self, cell: MatrixCell) -> None:
        from ..matrix.distributed import cell_inbox

        inbox = cell_inbox(cell.row, cell.col)
        queue = f"{inbox}.{inbox}.group"
        consumer_id = f"cell-{cell.row}-{cell.col}-g{engine_generation(self.engine)}"
        executor = self._new_pod(f"cell-{cell.row}-{cell.col}",
                                 self.cluster_config.joiner_spec,
                                 live_bytes_fn=lambda c=cell: c.live_bytes)

        def callback(delivery: Delivery, cell=cell, executor=executor) -> None:
            def work(start: float) -> float:
                before = _cell_counters(cell)
                payload = delivery.message.payload
                if isinstance(payload, EnvelopeBatch):
                    cell.on_batch(payload, now=start)
                else:
                    cell.on_envelope(payload, now=start)
                after = _cell_counters(cell)
                received = after.received - before.received
                return self.cost.joiner_work(
                    stored=received,  # every received tuple is stored...
                    probes=received,  # ...and probes the opposite index
                    comparisons=after.comparisons - before.comparisons,
                    results=after.results - before.results,
                )

            executor.submit(work)

        self.broker.cancel_consumer(queue, consumer_id)
        self.broker.consume(queue, consumer_id, callback)
        if self.overload is not None:
            self.overload.attach_inbox(f"cell-{cell.row}-{cell.col}", queue)

    def _wrap_router(self, router) -> None:
        from ..matrix.distributed import ENTRY_DESTINATION, ROUTER_GROUP

        queue = f"{ENTRY_DESTINATION}.{ROUTER_GROUP}"
        executor = self._new_pod(f"mrouter-{router.router_id}",
                                 self.cluster_config.router_spec)

        def callback(delivery: Delivery, router=router,
                     executor=executor) -> None:
            def work(start: float) -> float:
                router.on_delivery(replace(delivery, time=start))
                return self.cost.router_work(tuples=1)

            executor.submit(work)

        self.broker.cancel_consumer(queue, router.router_id)
        self.broker.consume(queue, router.router_id, callback)

    # ------------------------------------------------------------------
    # Run
    # ------------------------------------------------------------------
    def _pump(self, arrivals: Iterator[StreamTuple], duration: float) -> None:
        try:
            t = next(arrivals)
        except StopIteration:
            return
        if t.ts >= duration:
            return

        state = {"offered": False, "attempts": 0}

        def ingest() -> None:
            manager = self.overload
            if manager is not None:
                if not state["offered"]:
                    state["offered"] = True
                    manager.record_offered(t)
                verdict = manager.admission_decision(t)
                if verdict == DEFER:
                    state["attempts"] += 1
                    manager.record_deferral(t, self.sim.now,
                                            state["attempts"])
                    # Keep watermarks advancing during the stall (see
                    # SimulatedCluster._pump).
                    self.engine.maintain_punctuations(self.sim.now)
                    self.sim.schedule_after(manager.config.admission_retry,
                                            ingest, label="admission-retry")
                    return
                if verdict == SHED:
                    manager.record_shed(t, self.sim.now)
                    self._pump(arrivals, duration)
                    return
                manager.record_admitted(t, self.sim.now)
            self.engine.ingest(t)
            self._ingested += 1
            self._pump(arrivals, duration)

        # max(): a deferral stall can push the clock past the next
        # arrival's timestamp (blocked-producer backpressure).
        self.sim.schedule_at(max(t.ts, self.sim.now), ingest,
                             label="matrix-ingest")

    def _sample(self) -> None:
        self.metrics.sample(self.sim.now)
        if self.overload is not None:
            self.overload.observe(self.sim.now)

    def run(self, arrivals: Iterator[StreamTuple],
            duration: float) -> MatrixClusterReport:
        cancel = self.sim.schedule_periodic(
            self.cluster_config.metrics_interval,
            self._sample,
            label="matrix-metrics")
        self._pump(arrivals, duration)
        self.sim.run(until=duration)
        cancel()
        self.sim.run()
        self.engine.flush_transport()
        self.sim.run()  # deliver the final partial batches
        self.engine.finish()
        self.registry.collect()
        return MatrixClusterReport(
            duration=duration,
            tuples_ingested=self._ingested,
            results=len(self.engine.results),
            metrics=self.registry.snapshot(),
            overload=(None if self.overload is None
                      else self.overload.report()),
        )


def engine_generation(engine: DistributedMatrixEngine) -> int:
    """The engine's current cell generation (consumer-id suffix)."""
    return engine._cell_generation
