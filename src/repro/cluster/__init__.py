"""Kubernetes-like cluster substrate.

Replaces the thesis deployment stack (Docker + Kubernetes + GKE +
Heapster + Horizontal Pod Autoscaler) with simulated equivalents:

- :mod:`~repro.cluster.resources` — pod resource specs and the CPU
  cost model,
- :mod:`~repro.cluster.pod` — pods with serial CPU service and usage
  accounting,
- :mod:`~repro.cluster.metrics_server` — Heapster-style sampling,
- :mod:`~repro.cluster.autoscaler` — the HPA control loop,
- :mod:`~repro.cluster.supervisor` — crash-loop restart backoff,
- :mod:`~repro.cluster.runtime` — the full simulated cluster driving a
  biclique engine with autoscaling (thesis Figures 20/21) and
  executing declarative chaos schedules (fault injection).
"""

from .autoscaler import HorizontalPodAutoscaler, HpaConfig, HpaDecision
from .matrix_runtime import MatrixClusterReport, MatrixSimulatedCluster
from .metrics_server import MetricsServer, PodSample
from .pod import Pod
from .resources import CostModel, ResourceSpec
from .runtime import (
    ClusterConfig,
    ClusterReport,
    PodExecutor,
    PodInstrumentation,
    SimulatedCluster,
    TimelinePoint,
)
from .supervisor import RestartSupervisor, SupervisorConfig

__all__ = [
    "HorizontalPodAutoscaler",
    "HpaConfig",
    "HpaDecision",
    "MatrixClusterReport",
    "MatrixSimulatedCluster",
    "MetricsServer",
    "PodSample",
    "Pod",
    "CostModel",
    "ResourceSpec",
    "ClusterConfig",
    "ClusterReport",
    "PodExecutor",
    "PodInstrumentation",
    "RestartSupervisor",
    "SimulatedCluster",
    "SupervisorConfig",
    "TimelinePoint",
]
