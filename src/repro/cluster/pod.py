"""Simulated pods: serial CPU service and usage accounting.

A :class:`Pod` hosts one microservice instance (a joiner unit or a
router).  Work is served **serially**: a work item submitted while the
pod is busy starts when the previous item completes, which is how
queueing delay — and hence result latency under load — emerges in the
simulation.  CPU usage is capped by ``cpu_limit``; demand beyond the
limit simply queues further.

Usage is tracked as busy segments on the simulated timeline so the
metrics server can ask "how many CPU-seconds did this pod burn between
t0 and t1?" — the exact quantity Heapster samples in the thesis setup.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ClusterError
from ..metrics.memory import JvmHeapModel
from .resources import ResourceSpec


@dataclass
class _BusySegment:
    start: float
    end: float


class Pod:
    """A schedulable unit with CPU accounting and a JVM heap envelope."""

    def __init__(self, name: str, spec: ResourceSpec,
                 heap: JvmHeapModel | None = None) -> None:
        self.name = name
        self.spec = spec
        self.heap = heap if heap is not None else JvmHeapModel()
        self.created_at: float = 0.0
        self._free_at = 0.0
        self._segments: list[_BusySegment] = []
        self.total_busy_seconds = 0.0
        self.work_items = 0

    # ------------------------------------------------------------------
    # Serial CPU service
    # ------------------------------------------------------------------
    def schedule_work(self, now: float, service_seconds: float) -> tuple[float, float]:
        """Reserve CPU for one work item; returns ``(start, end)``.

        The item starts at ``max(now, free_at)`` — FIFO behind whatever
        is already queued — and runs for ``service_seconds`` stretched
        by the CPU limit (a 0.5-core limit makes 1 CPU-second of work
        take 2 wall-seconds).
        """
        if service_seconds < 0:
            raise ClusterError(f"negative service time {service_seconds!r}")
        start = max(now, self._free_at)
        wall = service_seconds / self.spec.cpu_limit
        end = start + wall
        self._free_at = end
        if wall > 0:
            self._segments.append(_BusySegment(start, end))
        self.total_busy_seconds += service_seconds
        self.work_items += 1
        return start, end

    @property
    def free_at(self) -> float:
        """Earliest time a newly submitted item could start."""
        return self._free_at

    def queue_delay(self, now: float) -> float:
        """Current backlog: how long a new item would wait."""
        return max(0.0, self._free_at - now)

    # ------------------------------------------------------------------
    # Usage metrics
    # ------------------------------------------------------------------
    def cpu_seconds_between(self, t0: float, t1: float) -> float:
        """CPU-seconds consumed in ``[t0, t1]`` (at most limit*(t1-t0))."""
        if t1 <= t0:
            return 0.0
        busy_wall = 0.0
        for seg in self._segments:
            lo = max(seg.start, t0)
            hi = min(seg.end, t1)
            if hi > lo:
                busy_wall += hi - lo
        return busy_wall * self.spec.cpu_limit

    def cpu_utilisation(self, t0: float, t1: float) -> float:
        """Usage relative to the *request* (K8s HPA semantics; can
        exceed 1.0 when the limit is above the request)."""
        if t1 <= t0:
            return 0.0
        return self.cpu_seconds_between(t0, t1) / ((t1 - t0) * self.spec.cpu_request)

    def prune_segments(self, before: float) -> None:
        """Forget busy segments that ended before ``before``."""
        self._segments = [s for s in self._segments if s.end > before]

    # ------------------------------------------------------------------
    # Memory metrics
    # ------------------------------------------------------------------
    def update_memory(self, live_bytes: int) -> int:
        """Feed the live set into the heap envelope; returns mapped bytes."""
        return self.heap.update(live_bytes)

    def memory_utilisation(self) -> float:
        """Mapped heap relative to the pod's memory request."""
        return self.heap.mapped_bytes / self.spec.memory_request

    def __repr__(self) -> str:  # pragma: no cover
        return f"Pod({self.name!r}, free_at={self._free_at:.3f})"
