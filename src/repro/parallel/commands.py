"""Command/output protocol of the worker command loop.

The coordinator drives each worker through a FIFO command channel and
reads a FIFO output channel back.  Both directions carry codec frames
(:mod:`repro.parallel.codec`) whose payloads are the dataclasses below
— all plain frozen dataclasses built from the existing wire-path types
(:class:`~repro.core.ordering.Envelope`,
:class:`~repro.core.batching.EnvelopeBatch`,
:class:`~repro.core.tuples.JoinResult`), so they pickle natively.

The exactly-once contract hangs on one property: a worker processes
each :class:`Deliver` synchronously to completion and emits **one
atomic output frame** (:class:`BatchDone`) carrying the batch's results
*and* its acknowledgement.  A worker killed before that frame reaches
the coordinator leaves the batch unacknowledged, so the supervisor
redelivers it to the replacement; a frame that did arrive settles the
batch forever.  There is no state in between — partial-batch
settlement, the hard case of the single-process crash path, cannot
occur here by construction.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.batching import EnvelopeBatch
from ..core.ordering import Envelope
from ..core.tuples import JoinResult

# ---------------------------------------------------------------------------
# Worker bootstrap
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class UnitSpec:
    """One joiner unit hosted by a worker: identity and relation side."""

    unit_id: str
    side: str


@dataclass(frozen=True)
class WorkerSpec:
    """Everything a worker process needs to build its joiners.

    Shipped as the worker's first codec frame; must stay picklable
    under the ``spawn`` start method (no live objects, only config).
    """

    worker_id: str
    units: tuple[UnitSpec, ...]
    predicate: object
    window: object
    archive_period: float | None
    timestamp_policy: str = "max"
    expiry_slack: float = 0.0
    #: ``None`` disables worker-side tracing; otherwise the sample rate
    #: of a worker-local :class:`~repro.obs.trace.Tracer` whose spans
    #: are backhauled in the :class:`Drained` frame.
    trace_sample_rate: float | None = None
    trace_max_spans: int = 100_000
    #: Coordinator's ``time.time()`` at start: worker span times are
    #: seconds since this shared epoch, comparable across processes.
    epoch: float = 0.0


# ---------------------------------------------------------------------------
# Commands (coordinator → worker)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Deliver:
    """Deliver one transport batch to one hosted unit.

    ``seq`` identifies the batch for acknowledgement and redelivery;
    sequence numbers are per-worker, strictly increasing, and preserved
    across a worker restart (the replacement sees the same batches
    under the same numbers, in the same order).
    """

    seq: int
    unit_id: str
    batch: EnvelopeBatch


@dataclass(frozen=True)
class DeliverShm:
    """Doorbell for a :class:`Deliver` shipped via the shared-memory ring.

    The batch's payload travels struct-packed through the worker's
    coordinator→worker ring (:mod:`repro.parallel.shm`); this tiny
    pickled frame travels the ordinary command channel to wake the
    worker and carry the ordering metadata.  Doorbells and ring records
    pair strictly 1:1 in channel order: on receipt the worker pops
    exactly one record, which must decode to a :class:`Deliver` with
    this ``seq`` — anything else is a protocol violation and fails the
    worker loudly.  Because the doorbell rides the same FIFO channel as
    full pickled ``Deliver`` frames, the two formats interleave freely
    per batch without reordering.
    """

    seq: int
    unit_id: str


@dataclass(frozen=True)
class Punctuate:
    """A router punctuation, applied to every unit the worker hosts.

    Punctuations are control traffic: never batched, never
    acknowledged, never redelivered.  The ordering protocol itself runs
    on the coordinator (which releases envelopes in global order before
    dispatch), so worker-side punctuations only keep the per-joiner
    stats aligned with the single-process engine.
    """

    router_id: str
    counter: int


@dataclass(frozen=True)
class Restore:
    """Rebuild one unit's window state from replayed store envelopes.

    Sent to a replacement worker before any redelivery; the worker runs
    :meth:`repro.core.joiner.Joiner.restore` (store-only — replayed
    tuples never probe, so nothing is emitted twice).
    """

    unit_id: str
    envelopes: tuple[Envelope, ...]


@dataclass(frozen=True)
class InstallUnit:
    """Host a new joiner unit (elastic scaling: migration cutover).

    Sent to the *target* worker of a live unit migration, immediately
    followed on the same FIFO channel by a :class:`Restore` carrying
    the unit's acked store snapshot and then by the unit's subsequent
    :class:`Deliver` batches — channel order alone guarantees the
    joiner exists and is restored before traffic reaches it.  A worker
    asked to install a unit it already hosts raises (a coordinator
    logic error must fail loudly, never silently reset window state).
    """

    unit: UnitSpec


@dataclass(frozen=True)
class EvictUnit:
    """Drop a hosted joiner unit (elastic scaling: migration source).

    Sent to the migration *source* after cutover.  The unit was
    quiesced first (every one of its batches settled), so the evicted
    state is fully represented by the coordinator's replay log.
    Evicting a unit the worker does not host is a tolerated no-op: a
    source that crashed after cutover respawns from a spec that no
    longer lists the unit, so the eviction is already vacuously done.
    """

    unit_id: str


@dataclass(frozen=True)
class Expire:
    """Proactively expire window state older than ``before_ts``.

    Probe-driven expiry already bounds memory under traffic; this
    command bounds it during long idle stretches.  ``unit_id=None``
    applies to every hosted unit.
    """

    before_ts: float
    unit_id: str | None = None


@dataclass(frozen=True)
class Snapshot:
    """Request a :class:`SnapshotResult` of per-unit state counters."""


@dataclass(frozen=True)
class Ping:
    """Heartbeat probe; the worker echoes ``seq`` back as a :class:`Pong`."""

    seq: int


@dataclass(frozen=True)
class Hang:
    """Chaos injection: block the command loop for ``seconds``.

    Models a worker stuck in a long synchronous computation (a GC
    pause, a pathological probe): the process stays alive but answers
    nothing — not even pings — until the sleep ends.  Batches queued
    behind the hang settle late; if the hang outlives the heartbeat
    timeout the supervisor kills and replaces the worker, and the
    command (being neither a Deliver nor ledgered) is *not* replayed.
    Only the chaos injector sends this.
    """

    seconds: float


@dataclass(frozen=True)
class Drain:
    """End-of-stream: flush every joiner, backhaul metrics and spans.

    The command channel is FIFO, so by the time the worker answers with
    :class:`Drained` every batch delivered before the drain has been
    processed and acknowledged.
    """


@dataclass(frozen=True)
class Stop:
    """Terminate the command loop; the worker exits cleanly."""


# ---------------------------------------------------------------------------
# Outputs (worker → coordinator)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class BatchDone:
    """The atomic settlement frame of one :class:`Deliver` command.

    Carries the acknowledgement (``seq``) and every join result the
    batch produced, in one frame — the exactly-once unit of the
    runtime (see the module docstring).
    """

    seq: int
    unit_id: str
    results: tuple[JoinResult, ...]
    #: Worker wall-seconds spent processing the batch (ring decode +
    #: join).  The coordinator subtracts it from the settle latency to
    #: estimate transit time (queueing + both channel directions) for
    #: the BENCH_e17 codec-timing breakdown.
    busy: float = 0.0


@dataclass(frozen=True)
class BatchDoneShm:
    """Doorbell for a :class:`BatchDone` shipped via the worker→
    coordinator shared-memory ring.

    Same strict 1:1 pairing as :class:`DeliverShm`, in the opposite
    direction, with one asymmetry: the coordinator checks ``seq``
    against the unacked ledger *before* popping the ring, so a
    redundant doorbell (a chaos-duplicated frame, or a replay race)
    leaves the ring untouched — exactly the existing redundant-ack
    tolerance.  A popped record that is not a :class:`BatchDone` with
    this ``seq`` quarantines the worker like any corrupt frame.
    ``count`` (the result count) is advisory, for logging only.
    """

    seq: int
    unit_id: str
    count: int = 0


@dataclass(frozen=True)
class Pong:
    """Heartbeat reply; echoes the :class:`Ping` sequence number."""

    seq: int


@dataclass(frozen=True)
class SnapshotResult:
    """Per-unit state counters: unit id → ``{stored, results, ...}``."""

    units: dict[str, dict[str, int]]


@dataclass(frozen=True)
class Drained:
    """Terminal frame of a graceful drain.

    Attributes:
        worker_id: the draining worker.
        metrics: a :meth:`~repro.obs.registry.MetricsRegistry.dump` of
            the worker's registry (joiner/index counters under their
            usual names plus ``repro_worker_*``), absorbed into the
            coordinator registry so ``report.metrics`` spans processes.
        spans: the worker tracer's spans (empty when tracing is off).
        stats: per-unit processing counters, for the report.
    """

    worker_id: str
    metrics: tuple
    spans: tuple
    stats: dict[str, dict[str, int]]


@dataclass(frozen=True)
class WorkerFailure:
    """The worker's command loop raised; carries the traceback text.

    The worker sends this frame and exits non-zero; the coordinator
    raises :class:`~repro.errors.ParallelError` — a logic error must
    fail the run, not trigger crash recovery."""

    worker_id: str
    message: str
