"""Real multiprocess execution runtime for the join-biclique.

The simulated cluster (:mod:`repro.cluster`) models distribution —
queueing, failures, autoscaling — inside one interpreter, which is the
right tool for controlled experiments but cannot demonstrate wall-clock
speedups: every simulated pod shares one Python GIL.  This package runs
the *same* joiner logic (:class:`~repro.core.joiner.Joiner`, reused
unchanged) across real worker processes:

- :mod:`repro.parallel.codec` — the versioned, checksummed wire frame
  every cross-process message travels in;
- :mod:`repro.parallel.commands` — the command/output protocol of the
  worker loop, including the atomic ``BatchDone`` settlement frame the
  exactly-once guarantee rests on;
- :mod:`repro.parallel.shm` — the shared-memory zero-copy data plane:
  per-worker ring buffers carrying struct-packed columnar batches,
  with pickled doorbell frames keeping ordering/supervision on the
  existing channels (``transport="shm"``, the default);
- :mod:`repro.parallel.worker` — the worker process entry point and
  the coordinator-side :class:`WorkerHandle` (process lifecycle,
  unacked-batch ledger, heartbeat bookkeeping);
- :mod:`repro.parallel.parallel_cluster` — the coordinator:
  engine-mirrored topology and stamping, coordinator-side ordering,
  supervision with replay-log recovery, live unit migration for
  elastic scale-out/scale-in, and metrics/trace backhaul;
- :mod:`repro.parallel.elastic` — the predictive autoscaling
  controller deciding the pool size and transport knobs from an
  explicit load/capacity model.

The E17 benchmark (``benchmarks/test_bench_e17_parallel_scaling.py``)
measures the wall-clock scaling this runtime exists to provide, and
``tests/parallel/test_differential.py`` proves the results identical
to the single-process engine — including under worker kills.
"""

from .codec import decode_frame, encode_frame, try_decode_frame
from .commands import (
    BatchDone,
    BatchDoneShm,
    Deliver,
    DeliverShm,
    Drain,
    Drained,
    EvictUnit,
    Expire,
    InstallUnit,
    Ping,
    Pong,
    Punctuate,
    Restore,
    Snapshot,
    SnapshotResult,
    Stop,
    UnitSpec,
    WorkerFailure,
    WorkerSpec,
)
from .elastic import ElasticConfig, ElasticController, ElasticDecision
from .parallel_cluster import (
    MAX_ROUTERS,
    ParallelCluster,
    ParallelConfig,
    ParallelReport,
)
from .shm import (
    DEFAULT_RING_CAPACITY,
    RING_CORRUPT,
    RING_EMPTY,
    RING_OK,
    BufferArena,
    ShmRing,
    TransportStats,
    pack_record,
    try_unpack_record,
)
from .worker import WorkerHandle, worker_main

__all__ = [
    "BatchDone",
    "BatchDoneShm",
    "BufferArena",
    "DEFAULT_RING_CAPACITY",
    "Deliver",
    "DeliverShm",
    "Drain",
    "Drained",
    "ElasticConfig",
    "ElasticController",
    "ElasticDecision",
    "EvictUnit",
    "Expire",
    "InstallUnit",
    "MAX_ROUTERS",
    "ParallelCluster",
    "ParallelConfig",
    "ParallelReport",
    "Ping",
    "Pong",
    "Punctuate",
    "RING_CORRUPT",
    "RING_EMPTY",
    "RING_OK",
    "Restore",
    "ShmRing",
    "Snapshot",
    "SnapshotResult",
    "Stop",
    "TransportStats",
    "UnitSpec",
    "WorkerFailure",
    "WorkerHandle",
    "WorkerSpec",
    "decode_frame",
    "encode_frame",
    "pack_record",
    "try_decode_frame",
    "try_unpack_record",
    "worker_main",
]
