"""Worker processes: joiner units behind a command loop.

A worker process hosts one or more :class:`~repro.core.joiner.Joiner`
units — the *same* joiner class the single-process engines run, reused
unchanged as the logic layer — behind a FIFO command loop
(:func:`worker_main`).  Commands arrive on a ``multiprocessing`` queue,
outputs leave on a pipe; both directions carry codec frames
(:mod:`repro.parallel.codec`).

Why the joiners run *unordered* here: the ordering protocol's release
decision (everything below the min-over-routers watermark, in global
``(counter, router_id)`` order) is taken by the coordinator, which is
the sole stamping entity and therefore already knows the global order
at dispatch time.  Each Deliver batch reaches the worker with its
envelopes in released global order on a FIFO channel, so processing in
arrival order *is* order-consistent processing — and it keeps the
worker free of cross-batch settlement state, which is what makes the
one-frame-per-batch exactly-once contract of
:mod:`repro.parallel.commands` possible.

The coordinator side of the pair is :class:`WorkerHandle`: process
lifecycle, the unacknowledged-batch ledger that drives redelivery, and
the heartbeat bookkeeping the supervisor reads.
"""

from __future__ import annotations

import dataclasses
import os
import signal
import time
import traceback
from typing import TYPE_CHECKING

from ..core.joiner import Joiner
from ..core.ordering import KIND_PUNCTUATION, KIND_STORE, Envelope
from ..core.tuples import JoinResult
from ..errors import ParallelError
from ..obs.registry import MetricsRegistry
from ..obs.trace import NOOP_TRACER, SPAN_DELIVER, Tracer
from .codec import decode_frame, encode_frame
from .commands import (
    BatchDone,
    BatchDoneShm,
    Deliver,
    DeliverShm,
    Drain,
    Drained,
    EvictUnit,
    Expire,
    Hang,
    InstallUnit,
    Ping,
    Pong,
    Punctuate,
    Restore,
    Snapshot,
    SnapshotResult,
    Stop,
    UnitSpec,
    WorkerFailure,
    WorkerSpec,
)
from .shm import (
    DEFAULT_RING_CAPACITY,
    RING_OK,
    BufferArena,
    ShmRing,
    TransportStats,
    pack_record,
    try_unpack_record,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    import multiprocessing as _mp


# ---------------------------------------------------------------------------
# Worker-process side
# ---------------------------------------------------------------------------
def _build_joiner(spec: WorkerSpec, unit: UnitSpec, sink, tracer) -> Joiner:
    return Joiner(
        unit_id=unit.unit_id, side=unit.side,
        predicate=spec.predicate, window=spec.window,
        archive_period=spec.archive_period, result_sink=sink,
        ordered=False, timestamp_policy=spec.timestamp_policy,
        expiry_slack=spec.expiry_slack, tracer=tracer)


def _build_joiners(spec: WorkerSpec, sink, tracer) -> dict[str, Joiner]:
    return {unit.unit_id: _build_joiner(spec, unit, sink, tracer)
            for unit in spec.units}


def _drained_frame(spec: WorkerSpec, joiners: dict[str, Joiner],
                   tracer, commands_seen: int,
                   encode_seconds: float = 0.0,
                   decode_seconds: float = 0.0) -> Drained:
    registry = MetricsRegistry()
    for joiner in joiners.values():
        joiner.export_metrics(registry)
    labels = {"worker": spec.worker_id}
    registry.gauge("repro_worker_units",
                   "Joiner units hosted by this worker process.",
                   labels).set(len(joiners))
    registry.counter("repro_worker_commands_total",
                     "Commands processed by the worker command loop.",
                     labels).set_total(commands_seen)
    registry.counter("repro_worker_codec_encode_seconds",
                     "Wall seconds this worker spent encoding data-plane "
                     "payloads (packed records and result frames).",
                     labels).set_total(encode_seconds)
    registry.counter("repro_worker_codec_decode_seconds",
                     "Wall seconds this worker spent decoding data-plane "
                     "payloads (packed records popped off the ring).",
                     labels).set_total(decode_seconds)
    stats = {
        unit_id: {
            "envelopes_received": j.stats.envelopes_received,
            "tuples_stored": j.stats.tuples_stored,
            "probes_processed": j.stats.probes_processed,
            "results_emitted": j.stats.results_emitted,
            "punctuations_received": j.stats.punctuations_received,
            "tuples_restored": j.stats.tuples_restored,
            "stored_tuples": j.stored_tuples,
        }
        for unit_id, j in joiners.items()
    }
    spans = tuple(tracer.spans) if tracer.enabled else ()
    return Drained(worker_id=spec.worker_id, metrics=tuple(registry.dump()),
                   spans=spans, stats=stats)


def _pop_deliver(ring: ShmRing, doorbell: DeliverShm) -> Deliver:
    """Pop exactly the one packed record the doorbell announced.

    Doorbells and ring records pair 1:1 in channel order, so the record
    at the tail *must* be a :class:`Deliver` with the doorbell's seq —
    any mismatch means the channel state is inconsistent (a bug, not a
    crash, because C2W records are written by the live coordinator) and
    fails the worker loudly via :class:`~repro.errors.ParallelError`,
    which reaches the coordinator as a :class:`WorkerFailure`.
    """
    status, payload = ring.read()
    if status != RING_OK:
        raise ParallelError(
            f"doorbell for seq {doorbell.seq} but the ring read was "
            f"{status!r}")
    try:
        ok, command = try_unpack_record(payload)
    finally:
        if isinstance(payload, memoryview):
            payload.release()
    ring.consume()
    if (not ok or not isinstance(command, Deliver)
            or command.seq != doorbell.seq
            or command.unit_id != doorbell.unit_id):
        raise ParallelError(
            f"doorbell/ring mismatch: expected Deliver seq {doorbell.seq} "
            f"unit {doorbell.unit_id!r}, ring held "
            f"{type(command).__name__ if ok else 'a corrupt record'}")
    return command


def worker_main(spec_frame: bytes, cmd_queue, out_conn,
                shm_names: "tuple[str, str] | None" = None) -> None:
    """The worker process entry point (must stay module-level: ``spawn``
    pickles it by qualified name).

    Reads codec-framed commands from ``cmd_queue`` in FIFO order,
    processes each one synchronously to completion, and writes codec-
    framed outputs to ``out_conn``.  Every :class:`Deliver` yields
    exactly one :class:`BatchDone` settlement carrying both the results
    and the acknowledgement — the atomic unit the supervisor's
    exactly-once argument rests on.

    With ``shm_names`` (the coordinator→worker and worker→coordinator
    ring segment names) the data plane moves to shared memory: batch
    payloads arrive as packed records announced by :class:`DeliverShm`
    doorbells, and results ship back through the W2C ring behind
    :class:`BatchDoneShm` doorbells whenever they pack and fit —
    falling back to the full pickled frame otherwise.  Settlement
    atomicity is unchanged: the record is published before its doorbell
    is sent, so the doorbell frame *is* the settlement event.
    """
    spec: WorkerSpec = decode_frame(spec_frame)
    tracer = NOOP_TRACER
    if spec.trace_sample_rate is not None:
        tracer = Tracer(sample_rate=spec.trace_sample_rate,
                        max_spans=spec.trace_max_spans)
    results: list[JoinResult] = []
    joiners = _build_joiners(spec, results.append, tracer)
    commands_seen = 0
    c2w = w2c = None
    if shm_names is not None:
        try:
            c2w = ShmRing(name=shm_names[0])
            w2c = ShmRing(name=shm_names[1])
        except FileNotFoundError:
            # The coordinator already unlinked these rings: it gave up
            # on this incarnation (quarantine/retire racing the spawn)
            # and will supervise the successor.  Exit quietly instead
            # of dying with a traceback the operator cannot act on.
            if c2w is not None:
                c2w.close()
            return
    scratch = bytearray()
    encode_seconds = 0.0
    decode_seconds = 0.0
    perf = time.perf_counter
    try:
        while True:
            command = decode_frame(cmd_queue.get())
            commands_seen += 1
            if isinstance(command, (Deliver, DeliverShm)):
                busy_from = perf()
                if isinstance(command, DeliverShm):
                    command = _pop_deliver(c2w, command)
                    decode_seconds += perf() - busy_from
                joiner = joiners[command.unit_id]
                if tracer.enabled:
                    # Wall time on the shared epoch, so worker spans are
                    # comparable with coordinator route/enqueue spans.
                    now = time.time() - spec.epoch
                    joiner._now = now
                    for env in command.batch:
                        if env.tuple is not None:
                            # The per-envelope deliver span the stage
                            # decomposition's transit/process split needs.
                            tracer.record(SPAN_DELIVER, now,
                                          command.unit_id,
                                          tuple_id=env.tuple.ident,
                                          detail=env.kind)
                joiner.on_batch(command.batch)
                done = BatchDone(
                    seq=command.seq, unit_id=command.unit_id,
                    results=tuple(results), busy=perf() - busy_from)
                results.clear()
                encode_from = perf()
                shipped = (w2c is not None and pack_record(done, scratch)
                           and w2c.try_write(scratch))
                if shipped:
                    # Record first, doorbell second: the settlement is
                    # atomic because only the doorbell frame settles.
                    frame = encode_frame(BatchDoneShm(
                        seq=done.seq, unit_id=done.unit_id,
                        count=len(done.results)))
                else:
                    frame = encode_frame(done)
                encode_seconds += perf() - encode_from
                out_conn.send_bytes(frame)
            elif isinstance(command, Punctuate):
                punctuation = Envelope(kind=KIND_PUNCTUATION,
                                       router_id=command.router_id,
                                       counter=command.counter)
                for joiner in joiners.values():
                    joiner.on_envelope(punctuation)
            elif isinstance(command, Ping):
                out_conn.send_bytes(encode_frame(Pong(seq=command.seq)))
            elif isinstance(command, Hang):
                # Chaos injection: a stuck command loop.  Sleeping here
                # (not in a thread) is the point — nothing behind this
                # command runs until the hang ends.
                time.sleep(command.seconds)
            elif isinstance(command, Restore):
                joiners[command.unit_id].restore(list(command.envelopes))
            elif isinstance(command, InstallUnit):
                unit = command.unit
                if unit.unit_id in joiners:
                    raise ParallelError(
                        f"unit {unit.unit_id!r} is already hosted by "
                        f"{spec.worker_id}; a double install would reset "
                        f"its window state")
                joiners[unit.unit_id] = _build_joiner(
                    spec, unit, results.append, tracer)
            elif isinstance(command, EvictUnit):
                # Tolerated when absent: a post-cutover respawn already
                # excludes the unit from its spec (see commands.py).
                joiners.pop(command.unit_id, None)
            elif isinstance(command, Expire):
                targets = (joiners.values() if command.unit_id is None
                           else (joiners[command.unit_id],))
                for joiner in targets:
                    joiner.index.expire(command.before_ts)
            elif isinstance(command, Snapshot):
                out_conn.send_bytes(encode_frame(SnapshotResult(units={
                    unit_id: {"stored": j.stored_tuples,
                              "results": j.stats.results_emitted,
                              "probes": j.stats.probes_processed}
                    for unit_id, j in joiners.items()})))
            elif isinstance(command, Drain):
                for joiner in joiners.values():
                    joiner.flush()
                out_conn.send_bytes(encode_frame(_drained_frame(
                    spec, joiners, tracer, commands_seen,
                    encode_seconds, decode_seconds)))
            elif isinstance(command, Stop):
                break
            else:
                raise ParallelError(f"unknown command {command!r}")
    except Exception:  # noqa: BLE001 - forwarded to the coordinator
        try:
            out_conn.send_bytes(encode_frame(WorkerFailure(
                worker_id=spec.worker_id,
                message=traceback.format_exc())))
        except OSError:  # pragma: no cover - coordinator already gone
            pass
        raise
    finally:
        # Detach only: the coordinator owns the segments' lifecycle.
        if c2w is not None:
            c2w.close()
        if w2c is not None:
            w2c.close()
        out_conn.close()


# ---------------------------------------------------------------------------
# Coordinator side
# ---------------------------------------------------------------------------
class WorkerHandle:
    """Coordinator-side lifecycle and ledger of one worker process.

    Owns the process object, the command queue, the output pipe, and
    the unacknowledged-batch ledger ``unacked`` (seq →
    :class:`~repro.parallel.commands.Deliver`) that redelivery and
    replay-log exclusion are computed from.  The handle survives its
    process: :meth:`respawn` attaches a fresh process (new queue and
    pipe) while keeping the sequence counter and the ledger, so a
    replacement sees the same outstanding batches under the same
    numbers.

    The handle also owns the authoritative *unit set* of the worker.
    Elastic migrations rewrite it through :meth:`set_units` (which
    re-encodes the bootstrap spec), so a replacement spawned after a
    migration hosts exactly the post-migration units — the property
    the mid-migration crash-safety argument rests on.
    """

    def __init__(self, spec: WorkerSpec, ctx, *,
                 transport: str = "pipe",
                 ring_capacity: int = DEFAULT_RING_CAPACITY,
                 arena: "BufferArena | None" = None,
                 stats: "TransportStats | None" = None) -> None:
        self.spec = spec
        self.worker_id = spec.worker_id
        self._spec_frame = encode_frame(spec)
        self._ctx = ctx
        self.transport = transport
        self.ring_capacity = ring_capacity
        #: Recycled pack buffers and data-plane accounting; the cluster
        #: passes shared instances so the whole pool pools/aggregates
        #: together, but a standalone handle works too.
        self.arena = arena if arena is not None else BufferArena()
        self.stats = stats if stats is not None else TransportStats()
        #: Shared-memory data rings (``transport="shm"`` only).  Fresh
        #: segments per incarnation: :meth:`respawn` discards both, so
        #: nothing a dead worker half-wrote leaks into its replacement.
        self.c2w_ring: "ShmRing | None" = None
        self.w2c_ring: "ShmRing | None" = None
        #: Set by the coordinator while the worker is being scaled in:
        #: its units are migrating away and no new unit may land on it.
        self.retiring = False
        self.next_seq = 0
        #: Outstanding Deliver commands awaiting their BatchDone frame.
        self.unacked: dict[int, Deliver] = {}
        #: seq → monotonic time the batch was (re)delivered; drives the
        #: per-command deadline escalation in the supervisor.
        self.delivered_at: dict[int, float] = {}
        #: Consecutive deadline misses survived by probing instead of
        #: killing (capped-exponential backoff); reset on any ack.
        self.deadline_strikes = 0
        self.restarts = 0
        self.drained: "Drained | None" = None
        self.last_snapshot: "SnapshotResult | None" = None
        self.last_contact = time.monotonic()
        self.ping_sent: float | None = None
        self._next_ping = 0
        self.process: "_mp.process.BaseProcess | None" = None
        self.cmd_queue = None
        self.conn = None
        self._spawn()

    @property
    def units(self) -> tuple[UnitSpec, ...]:
        """The units this worker (and any replacement of it) hosts."""
        return self.spec.units

    def set_units(self, units: tuple[UnitSpec, ...]) -> None:
        """Rewrite the hosted unit set (migration cutover).

        Only the bootstrap spec changes here — the *live* process is
        updated separately via :class:`~repro.parallel.commands.
        InstallUnit` / :class:`~repro.parallel.commands.EvictUnit`
        commands.  A crash after this point respawns into the new
        unit set, which is exactly what makes cutover atomic from the
        recovery path's point of view.
        """
        self.spec = dataclasses.replace(self.spec, units=units)
        self._spec_frame = encode_frame(self.spec)

    # -- lifecycle ---------------------------------------------------------
    def _spawn(self) -> None:
        self.cmd_queue = self._ctx.Queue()
        recv_conn, send_conn = self._ctx.Pipe(duplex=False)
        shm_names = None
        if self.transport == "shm":
            self.c2w_ring = ShmRing(self.ring_capacity)
            self.w2c_ring = ShmRing(self.ring_capacity)
            shm_names = (self.c2w_ring.name, self.w2c_ring.name)
        self.process = self._ctx.Process(
            target=worker_main,
            args=(self._spec_frame, self.cmd_queue, send_conn, shm_names),
            name=f"repro-{self.worker_id}", daemon=True)
        self.process.start()
        # Close the parent's copy of the write end: once the child dies,
        # every writer is gone and the read end sees EOF instead of
        # blocking forever.
        send_conn.close()
        self.conn = recv_conn
        self.last_contact = time.monotonic()
        self.ping_sent = None

    def respawn(self) -> None:
        """Attach a replacement process; the ledger and seq counter stay."""
        self.close_channels()
        self.restarts += 1
        self._spawn()

    @property
    def alive(self) -> bool:
        return self.process is not None and self.process.is_alive()

    def kill(self) -> None:
        """SIGKILL the worker process (fault injection / hung worker).

        SIGKILL cannot be blocked or handled, and it terminates a
        SIGSTOP'd process too — the one signal guaranteed to work on
        every fault the chaos injector produces.
        """
        if self.process is not None and self.process.pid is not None:
            try:
                os.kill(self.process.pid, signal.SIGKILL)
            except (ProcessLookupError, PermissionError):
                pass
            self.process.join(timeout=5.0)

    def stop(self) -> int | None:
        """SIGSTOP the worker (chaos injection: hung-but-alive).

        The process stays alive to ``is_alive()`` but answers nothing;
        supervision must notice via heartbeat/deadline escalation.
        Returns the stopped pid so the injector can SIGCONT *that*
        incarnation later, even if the handle has respawned meanwhile.
        """
        if self.process is None or self.process.pid is None:
            return None
        try:
            os.kill(self.process.pid, signal.SIGSTOP)
        except (ProcessLookupError, PermissionError):
            return None
        return self.process.pid

    @staticmethod
    def resume(pid: int) -> None:
        """SIGCONT a previously stopped pid; a dead pid is a no-op
        (the supervisor may have killed the stopped worker already)."""
        try:
            os.kill(pid, signal.SIGCONT)
        except (ProcessLookupError, PermissionError):
            pass

    def close_channels(self) -> None:
        """Release the dead (or stopping) process's IPC resources,
        including the shared-memory rings (the coordinator owns the
        segments; closing unlinks them)."""
        if self.c2w_ring is not None:
            self.c2w_ring.close()
            self.c2w_ring = None
        if self.w2c_ring is not None:
            self.w2c_ring.close()
            self.w2c_ring = None
        if self.conn is not None:
            try:
                self.conn.close()
            except OSError:
                pass
        if self.cmd_queue is not None:
            self.cmd_queue.close()
            # The feeder thread may hold frames the dead worker never
            # read; joining it would block forever.
            self.cmd_queue.cancel_join_thread()
        if self.process is not None:
            self.process.join(timeout=5.0)

    # -- command channel ---------------------------------------------------
    def send(self, command) -> None:
        self.cmd_queue.put(encode_frame(command))

    def _send_data(self, command: Deliver) -> None:
        """Ship one batch over the data plane.

        On the shm transport the payload goes into the C2W ring as a
        packed record and a :class:`DeliverShm` doorbell follows on the
        command channel; when the batch doesn't pack (exotic payload)
        or doesn't fit (ring full), the full pickled frame takes the
        same channel instead — byte-order on the FIFO channel keeps the
        two formats interchangeable per batch.
        """
        start = time.perf_counter()
        if self.c2w_ring is not None:
            buf = self.arena.acquire()
            try:
                shipped = (pack_record(command, buf)
                           and self.c2w_ring.try_write(buf))
            finally:
                self.arena.release(buf)
            if shipped:
                self.stats.shm_batches += 1
                self.send(DeliverShm(seq=command.seq,
                                     unit_id=command.unit_id))
                self.stats.encode_seconds += time.perf_counter() - start
                return
            self.stats.pipe_fallbacks += 1
        self.send(command)
        self.stats.encode_seconds += time.perf_counter() - start

    def deliver(self, command: Deliver) -> None:
        """Send a batch and enter it into the unacked ledger."""
        self.unacked[command.seq] = command
        self.delivered_at[command.seq] = time.monotonic()
        self._send_data(command)

    def redeliver_outstanding(self) -> int:
        """Re-send every unacked batch, in sequence order, to the
        replacement process; returns the number redelivered."""
        outstanding = sorted(self.unacked)
        now = time.monotonic()
        for seq in outstanding:
            self._send_data(self.unacked[seq])
            # Fresh deadline stamp: the replacement starts from zero.
            self.delivered_at[seq] = now
        self.deadline_strikes = 0
        return len(outstanding)

    def ack(self, seq: int) -> Deliver:
        """Settle one batch; returns the settled command (for replay)."""
        self.delivered_at.pop(seq, None)
        self.deadline_strikes = 0
        return self.unacked.pop(seq)

    def oldest_outstanding_age(self) -> float | None:
        """Seconds the longest-waiting unacked batch has been out."""
        if not self.delivered_at:
            return None
        return time.monotonic() - min(self.delivered_at.values())

    def maybe_ping(self, interval: float) -> None:
        """Send a heartbeat probe if the worker has been quiet too long."""
        if self.ping_sent is None and self.silent_for() >= interval:
            self.probe()

    def probe(self) -> None:
        """Force a heartbeat probe now (deadline escalation), unless one
        is already outstanding — the hung-worker clock must keep running
        from the *first* unanswered ping."""
        if self.ping_sent is None:
            self.ping_sent = time.monotonic()
            self._next_ping += 1
            self.send(Ping(seq=self._next_ping))

    def note_contact(self) -> None:
        self.last_contact = time.monotonic()
        self.ping_sent = None

    def silent_for(self) -> float:
        """Seconds since the last frame (or successful spawn)."""
        return time.monotonic() - self.last_contact

    def unacked_for_unit(self, unit_id: str) -> int:
        """Outstanding batches of one hosted unit (the quiesce gauge:
        a migration may cut over only once this reaches zero)."""
        return sum(1 for command in self.unacked.values()
                   if command.unit_id == unit_id)

    # -- store-envelope bookkeeping ---------------------------------------
    def outstanding_store_keys(self, unit_id: str) -> set:
        """``(counter, router_id)`` of store envelopes in unacked batches
        of one unit — these will be redelivered, so a replacement must
        not *also* restore them from the replay log."""
        keys = set()
        for command in self.unacked.values():
            if command.unit_id != unit_id:
                continue
            for env in command.batch:
                if env.kind == KIND_STORE:
                    keys.add((env.counter, env.router_id))
        return keys
