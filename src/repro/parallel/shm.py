"""The shared-memory zero-copy data plane of the multiprocess runtime.

The pickle-over-pipe codec (:mod:`repro.parallel.codec`) is the right
tool for the *control plane* — commands are small, rare, and carry
arbitrary objects — but it dominates the *data plane*: every
``Deliver``/``BatchDone`` round-trips through per-object pickling of
frozen-slots dataclasses plus an OS pipe copy in each direction, which
is why BENCH_e17 recorded ~415 tuples/s per worker with real cores
buying nothing.  This module moves the data plane onto
``multiprocessing.shared_memory`` following *Parallel Index-based
Stream Join on a Multicore CPU* (PAPERS.md):

- :class:`ShmRing` — a single-producer/single-consumer ring buffer in
  one shared-memory segment.  The reader and writer cursors live *in*
  the segment (offsets 0 and 8) as monotonic byte counts, so free
  space, wraparound and emptiness are all derived arithmetic — there
  is no out-of-band state to lose when a worker dies.
- :func:`pack_record` / :func:`try_unpack_record` — a struct-packed
  **columnar** batch format for the two data-plane payloads
  (:class:`~repro.parallel.commands.Deliver` and
  :class:`~repro.parallel.commands.BatchDone`): a fixed self-validating
  header (magic, version, type, body length, body CRC32), packed
  arrays of per-envelope/per-result fields (kind, router, counter,
  tuple index), a deduplicated tuple table whose attribute values are
  packed as per-column typed arrays, and small string tables for the
  handful of distinct unit/router/relation names.  One ``struct`` call
  packs a whole column, so the per-object overhead pickle pays on
  frozen-slots dataclasses disappears.
- :class:`BufferArena` — recycled ``bytearray`` scratch buffers for
  coordinator-side packing (no per-batch allocation).

**Crash-safety invariants** (the recovery argument leans on these):

1. A record becomes visible only when the writer *publishes* the head
   cursor, which happens strictly after the record bytes are in place.
   A worker (or coordinator) SIGKILLed mid-write leaves the head
   untouched: the torn bytes are invisible and the batch is simply an
   unacked ledger entry — ordinary respawn + replay.
2. Published bytes are immutable until the *reader* advances the tail,
   and only the reader advances the tail — so a record returned by
   :meth:`ShmRing.read` cannot be overwritten mid-decode.
3. Every record self-validates (length bounds, magic, version, CRC32
   of the body).  A record that fails validation means the channel can
   no longer be trusted; the coordinator treats it exactly like a
   corrupt pipe frame — quarantine: kill, respawn (fresh rings),
   redeliver.  A torn 8-byte head write (possible only if the writer
   dies inside the cursor store) at worst makes the reader see garbage
   past the last record, which lands in the same quarantine path.
4. Respawn discards both rings and creates fresh segments: nothing a
   dead incarnation half-wrote can leak into its replacement's
   channel.

The rings carry *payloads*; ordering and wakeup stay on the existing
pickle channels via tiny doorbell frames
(:class:`~repro.parallel.commands.DeliverShm` /
:class:`~repro.parallel.commands.BatchDoneShm`), so blocking semantics,
heartbeats and supervision are untouched.  Anything the packer cannot
express (non-columnar schemas, exotic value types, a full ring) falls
back to the full pickled frame on the same channel — the formats
coexist per batch, and strict per-doorbell pairing keeps settlement a
seq-order prefix either way.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Any

from ..core.batching import EnvelopeBatch
from ..core.ordering import KIND_JOIN, KIND_STORE, Envelope
from ..core.tuples import JoinResult, StreamTuple
from .commands import BatchDone, Deliver

# ---------------------------------------------------------------------------
# Record format
# ---------------------------------------------------------------------------

#: Magic of a struct-packed data-plane record.
SHM_MAGIC = b"RSBF"
#: Record format revision; bump on any incompatible layout change.
SHM_VERSION = 1

#: Record type: a packed :class:`~repro.parallel.commands.Deliver`.
TYPE_DELIVER = 1
#: Record type: a packed :class:`~repro.parallel.commands.BatchDone`.
TYPE_RESULTS = 2

#: ``magic | version | type | reserved | body length | body crc32``.
_PAYLOAD_HEADER = struct.Struct("<4sBBHII")
PAYLOAD_HEADER_SIZE = _PAYLOAD_HEADER.size

#: Value-column type tags of the tuple table.
_TAG_INT = 0
_TAG_FLOAT = 1
_TAG_STR = 2

_KIND_CODES = {KIND_STORE: 0, KIND_JOIN: 1}
_KIND_NAMES = {0: KIND_STORE, 1: KIND_JOIN}


class _Unpackable(Exception):
    """Internal: the payload cannot be expressed in the packed format
    (caller falls back to the pickle frame)."""


class _Truncated(Exception):
    """Internal: a packed record ended mid-field (rejected, never raised
    out of :func:`try_unpack_record`)."""


# -- packing helpers --------------------------------------------------------
def _pack_str8(buf: bytearray, s: str) -> None:
    encoded = s.encode("utf-8")
    if len(encoded) > 255:
        raise _Unpackable(s)
    buf.append(len(encoded))
    buf += encoded


def _pack_str_table(buf: bytearray, strings: list[str]) -> None:
    if len(strings) > 255:
        raise _Unpackable("string table overflow")
    buf.append(len(strings))
    for s in strings:
        _pack_str8(buf, s)


class _Interner:
    """Builds a string table and per-item index array in one pass."""

    __slots__ = ("strings", "_index")

    def __init__(self) -> None:
        self.strings: list[str] = []
        self._index: dict[str, int] = {}

    def add(self, s: str) -> int:
        idx = self._index.get(s)
        if idx is None:
            idx = self._index[s] = len(self.strings)
            if idx > 255:
                raise _Unpackable("string table overflow")
            self.strings.append(s)
        return idx


def _pack_tuple_table(buf: bytearray, tuples: list[StreamTuple]) -> None:
    """Columnar tuple table: relations, timestamps, seqs, then one typed
    array per schema attribute.  Requires every tuple to share one
    schema (attribute names in one order) and every column to be
    monomorphic int/float/str — the common case by far; anything else
    raises :class:`_Unpackable` and the batch ships as pickle."""
    n = len(tuples)
    buf += struct.pack("<I", n)
    relations = _Interner()
    rel_idx = bytes(relations.add(t.relation) for t in tuples)
    _pack_str_table(buf, relations.strings)
    buf += rel_idx
    buf += struct.pack(f"<{n}d", *[t.ts for t in tuples])
    buf += struct.pack(f"<{n}q", *[t.seq for t in tuples])
    if n == 0:
        buf.append(0)
        return
    schema = tuple(tuples[0].values.keys())
    if len(schema) > 255:
        raise _Unpackable("schema overflow")
    for t in tuples:
        if tuple(t.values.keys()) != schema:
            raise _Unpackable("mixed schemas")
    buf.append(len(schema))
    for attr in schema:
        _pack_str8(buf, attr)
        column = [t.values[attr] for t in tuples]
        kind = type(column[0])
        if kind is int and all(type(v) is int for v in column):
            buf.append(_TAG_INT)
            buf += struct.pack(f"<{n}q", *column)
        elif kind is float and all(type(v) is float for v in column):
            buf.append(_TAG_FLOAT)
            buf += struct.pack(f"<{n}d", *column)
        elif kind is str and all(type(v) is str for v in column):
            encoded = [v.encode("utf-8") for v in column]
            buf.append(_TAG_STR)
            buf += struct.pack(f"<{n}I", *[len(e) for e in encoded])
            for e in encoded:
                buf += e
        else:
            raise _Unpackable(f"unpackable column {attr!r}")


def _pack_deliver_body(buf: bytearray, command: Deliver) -> None:
    envelopes = command.batch.envelopes
    n = len(envelopes)
    buf += struct.pack("<QI", command.seq, n)
    _pack_str8(buf, command.unit_id)
    routers = _Interner()
    tuple_table: list[StreamTuple] = []
    tuple_index: dict[int, int] = {}
    kinds = bytearray(n)
    router_idx = bytearray(n)
    counters: list[int] = []
    tuple_idx: list[int] = []
    for i, env in enumerate(envelopes):
        code = _KIND_CODES.get(env.kind)
        if code is None or env.tuple is None:
            raise _Unpackable(env.kind)
        kinds[i] = code
        router_idx[i] = routers.add(env.router_id)
        counters.append(env.counter)
        # Dedup by object identity: a tuple referenced by several
        # envelopes of the batch is packed (and rebuilt) once.
        key = id(env.tuple)
        pos = tuple_index.get(key)
        if pos is None:
            pos = tuple_index[key] = len(tuple_table)
            tuple_table.append(env.tuple)
        tuple_idx.append(pos)
    _pack_str_table(buf, routers.strings)
    buf += kinds
    buf += router_idx
    buf += struct.pack(f"<{n}Q", *counters)
    buf += struct.pack(f"<{n}I", *tuple_idx)
    _pack_tuple_table(buf, tuple_table)


def _pack_results_body(buf: bytearray, done: BatchDone) -> None:
    results = done.results
    n = len(results)
    buf += struct.pack("<QId", done.seq, n, done.busy)
    _pack_str8(buf, done.unit_id)
    producers = _Interner()
    tuple_table: list[StreamTuple] = []
    tuple_index: dict[int, int] = {}

    def intern_tuple(t: StreamTuple) -> int:
        key = id(t)
        pos = tuple_index.get(key)
        if pos is None:
            pos = tuple_index[key] = len(tuple_table)
            tuple_table.append(t)
        return pos

    producer_idx = bytes(producers.add(r.producer) for r in results)
    r_idx = [intern_tuple(r.r) for r in results]
    s_idx = [intern_tuple(r.s) for r in results]
    _pack_str_table(buf, producers.strings)
    buf += producer_idx
    buf += struct.pack(f"<{n}I", *r_idx)
    buf += struct.pack(f"<{n}I", *s_idx)
    buf += struct.pack(f"<{n}d", *[r.ts for r in results])
    buf += struct.pack(f"<{n}d", *[r.produced_at for r in results])
    _pack_tuple_table(buf, tuple_table)


def pack_record(obj: Any, buf: bytearray) -> bool:
    """Pack one data-plane payload into ``buf`` (cleared first).

    Returns ``True`` with ``buf`` holding a complete self-validating
    record, or ``False`` when the payload cannot be expressed in the
    packed format (unknown type, non-columnar values, out-of-range
    ints, oversized names) — the caller then falls back to the pickle
    frame.  ``buf`` contents are unspecified after a ``False`` return.
    """
    buf.clear()
    buf += b"\x00" * PAYLOAD_HEADER_SIZE
    try:
        if isinstance(obj, Deliver):
            rtype = TYPE_DELIVER
            _pack_deliver_body(buf, obj)
        elif isinstance(obj, BatchDone):
            rtype = TYPE_RESULTS
            _pack_results_body(buf, obj)
        else:
            return False
    except (_Unpackable, struct.error, OverflowError, UnicodeEncodeError,
            AttributeError, TypeError):
        return False
    body_len = len(buf) - PAYLOAD_HEADER_SIZE
    crc = zlib.crc32(memoryview(buf)[PAYLOAD_HEADER_SIZE:])
    _PAYLOAD_HEADER.pack_into(buf, 0, SHM_MAGIC, SHM_VERSION, rtype, 0,
                              body_len, crc)
    return True


# -- unpacking --------------------------------------------------------------
class _Reader:
    """Offset-tracked reads over one record payload; every read is
    bounds-checked so a truncated or lying record can never index past
    the buffer."""

    __slots__ = ("data", "pos", "end")

    def __init__(self, data, pos: int) -> None:
        self.data = data
        self.pos = pos
        self.end = len(data)

    def unpack(self, fmt: str, size: int) -> tuple:
        if self.pos + size > self.end:
            raise _Truncated(fmt)
        values = struct.unpack_from(fmt, self.data, self.pos)
        self.pos += size
        return values

    def take_bytes(self, n: int) -> bytes:
        if n < 0 or self.pos + n > self.end:
            raise _Truncated(n)
        chunk = bytes(self.data[self.pos:self.pos + n])
        self.pos += n
        return chunk

    def str8(self) -> str:
        (length,) = self.unpack("<B", 1)
        return self.take_bytes(length).decode("utf-8")

    def str_table(self) -> list[str]:
        (count,) = self.unpack("<B", 1)
        return [self.str8() for _ in range(count)]


def _unpack_tuple_table(reader: _Reader) -> list[StreamTuple]:
    (n,) = reader.unpack("<I", 4)
    relations = reader.str_table()
    rel_idx = reader.take_bytes(n)
    ts = reader.unpack(f"<{n}d", 8 * n)
    seqs = reader.unpack(f"<{n}q", 8 * n)
    (n_keys,) = reader.unpack("<B", 1)
    columns: list[tuple[str, tuple]] = []
    for _ in range(n_keys):
        attr = reader.str8()
        (tag,) = reader.unpack("<B", 1)
        if tag == _TAG_INT:
            columns.append((attr, reader.unpack(f"<{n}q", 8 * n)))
        elif tag == _TAG_FLOAT:
            columns.append((attr, reader.unpack(f"<{n}d", 8 * n)))
        elif tag == _TAG_STR:
            lengths = reader.unpack(f"<{n}I", 4 * n)
            columns.append((attr, tuple(
                reader.take_bytes(length).decode("utf-8")
                for length in lengths)))
        else:
            raise _Truncated(f"bad column tag {tag}")
    keys = tuple(attr for attr, _ in columns)
    rows = zip(*(values for _, values in columns)) if columns \
        else iter(() for _ in range(n))
    tuples: list[StreamTuple] = []
    for i, row in zip(range(n), rows):
        tuples.append(StreamTuple(
            relation=relations[rel_idx[i]], ts=ts[i],
            values=dict(zip(keys, row)), seq=seqs[i]))
    if len(tuples) != n:
        raise _Truncated("tuple table rows")
    return tuples


def _unpack_deliver_body(reader: _Reader) -> Deliver:
    seq, n = reader.unpack("<QI", 12)
    unit_id = reader.str8()
    routers = reader.str_table()
    kinds = reader.take_bytes(n)
    router_idx = reader.take_bytes(n)
    counters = reader.unpack(f"<{n}Q", 8 * n)
    tuple_idx = reader.unpack(f"<{n}I", 4 * n)
    tuples = _unpack_tuple_table(reader)
    envelopes = tuple(
        Envelope(kind=_KIND_NAMES[kinds[i]],
                 router_id=routers[router_idx[i]],
                 counter=counters[i], tuple=tuples[tuple_idx[i]])
        for i in range(n))
    return Deliver(seq=seq, unit_id=unit_id,
                   batch=EnvelopeBatch(envelopes))


def _unpack_results_body(reader: _Reader) -> BatchDone:
    seq, n, busy = reader.unpack("<QId", 20)
    unit_id = reader.str8()
    producers = reader.str_table()
    producer_idx = reader.take_bytes(n)
    r_idx = reader.unpack(f"<{n}I", 4 * n)
    s_idx = reader.unpack(f"<{n}I", 4 * n)
    ts = reader.unpack(f"<{n}d", 8 * n)
    produced_at = reader.unpack(f"<{n}d", 8 * n)
    tuples = _unpack_tuple_table(reader)
    results = tuple(
        JoinResult(r=tuples[r_idx[i]], s=tuples[s_idx[i]], ts=ts[i],
                   produced_at=produced_at[i],
                   producer=producers[producer_idx[i]])
        for i in range(n))
    return BatchDone(seq=seq, unit_id=unit_id, results=results, busy=busy)


def try_unpack_record(payload) -> tuple[bool, Any]:
    """Best-effort decode of one packed record: ``(True, obj)`` or
    ``(False, None)``.

    Never raises: truncations, bit flips, wrong magic/version/type,
    lying lengths and CRC mismatches all return ``(False, None)`` — the
    shared-memory analogue of
    :func:`repro.parallel.codec.try_decode_frame`.
    """
    try:
        if len(payload) < PAYLOAD_HEADER_SIZE:
            return False, None
        magic, version, rtype, _, body_len, crc = _PAYLOAD_HEADER.unpack_from(
            payload, 0)
        if magic != SHM_MAGIC or version != SHM_VERSION:
            return False, None
        if body_len != len(payload) - PAYLOAD_HEADER_SIZE:
            return False, None
        if zlib.crc32(memoryview(payload)[PAYLOAD_HEADER_SIZE:]) != crc:
            return False, None
        reader = _Reader(payload, PAYLOAD_HEADER_SIZE)
        if rtype == TYPE_DELIVER:
            obj = _unpack_deliver_body(reader)
        elif rtype == TYPE_RESULTS:
            obj = _unpack_results_body(reader)
        else:
            return False, None
        if reader.pos != reader.end:
            return False, None  # trailing garbage: not a clean record
        return True, obj
    except (_Truncated, struct.error, UnicodeDecodeError, KeyError,
            IndexError, ValueError, OverflowError, MemoryError):
        return False, None


# ---------------------------------------------------------------------------
# The ring buffer
# ---------------------------------------------------------------------------

#: Default per-direction ring capacity (bytes).
DEFAULT_RING_CAPACITY = 1 << 20

#: Ring layout: ``head (u64) | tail (u64) | data[capacity]``.
_CURSOR = struct.Struct("<Q")
_DATA_OFFSET = 16

#: Per-record framing inside the ring: a 4-byte length prefix (the
#: payload self-validates, see the record format above).
_REC_LEN = struct.Struct("<I")

RING_EMPTY = "empty"
RING_OK = "ok"
RING_CORRUPT = "corrupt"


class ShmRing:
    """A single-producer/single-consumer byte ring in shared memory.

    ``head`` (bytes ever written) and ``tail`` (bytes ever consumed)
    live at segment offsets 0 and 8; the writer publishes ``head`` only
    after a record's bytes are fully in place, and only the reader
    advances ``tail`` — see the module docstring for the crash-safety
    argument this supports.  Capacity is derived from the actual
    segment size (the OS may round up), so creator and attacher always
    agree on the wraparound arithmetic.
    """

    def __init__(self, capacity: int = DEFAULT_RING_CAPACITY, *,
                 name: str | None = None) -> None:
        if name is None:
            if capacity < 4 * 1024:
                raise ValueError("ring capacity must be >= 4 KiB")
            self._shm = shared_memory.SharedMemory(
                create=True, size=_DATA_OFFSET + capacity)
            self._owner = True
        else:
            self._shm = shared_memory.SharedMemory(name=name)
            self._owner = False
            # Python < 3.13 registers attached segments with the
            # resource tracker too.  Worker processes share the
            # coordinator's tracker (the fd is inherited at spawn), so
            # the attach-side register is an idempotent set-add of a
            # name already tracked by the creator, and the creator's
            # unlink clears it — nothing to do here.  Unregistering
            # from the worker would instead strip the shared entry and
            # make the coordinator's unlink trip the tracker.
        self._buf = self._shm.buf
        self.capacity = self._shm.size - _DATA_OFFSET
        self._closed = False

    @property
    def name(self) -> str:
        """The segment name a peer attaches with (``name=``)."""
        return self._shm.name

    # -- cursors -------------------------------------------------------
    @property
    def head(self) -> int:
        return _CURSOR.unpack_from(self._buf, 0)[0]

    @property
    def tail(self) -> int:
        return _CURSOR.unpack_from(self._buf, 8)[0]

    def _publish_head(self, value: int) -> None:
        _CURSOR.pack_into(self._buf, 0, value)

    def _publish_tail(self, value: int) -> None:
        _CURSOR.pack_into(self._buf, 8, value)

    @property
    def free_bytes(self) -> int:
        return self.capacity - (self.head - self.tail)

    # -- writer side ---------------------------------------------------
    def try_write(self, payload) -> bool:
        """Append one record; ``False`` (nothing written) when the ring
        lacks space — the caller falls back to the pickle channel
        instead of blocking, which is what keeps the data plane
        deadlock-free by construction."""
        head = self.head
        total = _REC_LEN.size + len(payload)
        if total > self.capacity - (head - self.tail):
            return False
        pos = self._copy_in(head, _REC_LEN.pack(len(payload)))
        self._copy_in(pos, payload)
        # Publish strictly after the bytes: a crash before this line
        # leaves the record invisible (crash-safety invariant 1).
        self._publish_head(head + total)
        return True

    def _copy_in(self, pos: int, data) -> int:
        cap = self.capacity
        offset = pos % cap
        view = memoryview(data)
        first = min(len(view), cap - offset)
        start = _DATA_OFFSET + offset
        self._buf[start:start + first] = view[:first]
        if first < len(view):
            self._buf[_DATA_OFFSET:_DATA_OFFSET + len(view) - first] = \
                view[first:]
        return pos + len(view)

    # -- reader side ---------------------------------------------------
    def read(self):
        """Peek the record at the tail **without consuming it**.

        Returns ``(RING_OK, payload)``, ``(RING_EMPTY, None)`` or
        ``(RING_CORRUPT, None)`` when the cursors or the length prefix
        are inconsistent (a torn head write or damaged segment — the
        caller quarantines).  The payload is a zero-copy ``memoryview``
        into the segment when the record is contiguous (bytes when it
        wraps); call :meth:`consume` once it has been decoded.
        """
        head, tail = self.head, self.tail
        available = head - tail
        if available == 0:
            return RING_EMPTY, None
        if available < _REC_LEN.size or available > self.capacity:
            return RING_CORRUPT, None
        (length,) = _REC_LEN.unpack(bytes(self._slice(tail, _REC_LEN.size)))
        if (length < PAYLOAD_HEADER_SIZE
                or _REC_LEN.size + length > available):
            return RING_CORRUPT, None
        return RING_OK, self._slice(tail + _REC_LEN.size, length)

    def consume(self) -> None:
        """Advance the tail past the record last returned by
        :meth:`read` (reader-only cursor: crash-safety invariant 2)."""
        tail = self.tail
        (length,) = _REC_LEN.unpack(bytes(self._slice(tail, _REC_LEN.size)))
        self._publish_tail(tail + _REC_LEN.size + length)

    def _slice(self, pos: int, n: int):
        cap = self.capacity
        offset = pos % cap
        if offset + n <= cap:
            start = _DATA_OFFSET + offset
            return self._buf[start:start + n]
        first = cap - offset
        return (bytes(self._buf[_DATA_OFFSET + offset:_DATA_OFFSET + cap])
                + bytes(self._buf[_DATA_OFFSET:_DATA_OFFSET + n - first]))

    # -- lifecycle -----------------------------------------------------
    def close(self) -> None:
        """Detach (and unlink, if this side created the segment)."""
        if self._closed:
            return
        self._closed = True
        self._buf = None
        try:
            self._shm.close()
        except BufferError:  # pragma: no cover - a leaked view
            pass
        if self._owner:
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass


# ---------------------------------------------------------------------------
# Coordinator-side helpers
# ---------------------------------------------------------------------------
class BufferArena:
    """Recycled ``bytearray`` scratch buffers for batch packing.

    The coordinator packs every outgoing batch into an arena buffer and
    returns it after the ring copy, so steady-state packing allocates
    nothing per batch (``bytearray.clear`` keeps the backing storage).
    """

    __slots__ = ("_free", "allocated", "reused")

    def __init__(self) -> None:
        self._free: list[bytearray] = []
        self.allocated = 0
        self.reused = 0

    def acquire(self) -> bytearray:
        if self._free:
            self.reused += 1
            return self._free.pop()
        self.allocated += 1
        return bytearray()

    def release(self, buf: bytearray) -> None:
        buf.clear()
        self._free.append(buf)


@dataclass
class TransportStats:
    """Data-plane accounting, shared by every worker handle of one
    cluster and exported into the metrics registry / BENCH artifacts.

    ``transit_seconds`` is settle latency minus the worker's reported
    per-batch busy time — i.e. queueing plus both channel directions,
    the component the shared-memory transport exists to shrink.
    """

    encode_seconds: float = 0.0
    decode_seconds: float = 0.0
    transit_seconds: float = 0.0
    shm_batches: int = 0
    pipe_fallbacks: int = 0
