"""The coordinator of the real multiprocess execution runtime.

:class:`ParallelCluster` runs a join-biclique deployment across real
worker *processes* (one Python interpreter each, hence real cores) while
keeping the single-process engines' semantics bit for bit:

- **Topology** mirrors :class:`~repro.core.biclique.BicliqueEngine`:
  the same :class:`~repro.core.routing.JoinerGroup` membership, the
  same routing strategy construction (ContRand round-robin/broadcast or
  ContHash partition epochs), the same ``R0..``/``S0..`` unit naming
  and ``router0..`` stamping identities.
- **Ordering** is decided on the coordinator.  The cluster is the sole
  stamping entity, so it already emits envelopes in global
  ``(counter, router_id)`` order; workers run their joiners *unordered*
  over FIFO channels, and processing in arrival order is
  order-consistent by construction (see :mod:`repro.parallel.worker`).
  This is why the router pool is capped at ten stampers: with
  round-robin stamping, ingest order equals global order exactly when
  the router-id string sort matches the pool index order, which holds
  for ``router0``..``router9`` and breaks at ``router10`` < ``router2``.
- **Exactly-once** rests on two disciplines.  A worker settles each
  delivered batch with one atomic :class:`~repro.parallel.commands.
  BatchDone` frame (results + acknowledgement together), so a killed
  worker leaves a batch either fully settled or fully redeliverable.
  And the coordinator records store envelopes into its
  :class:`~repro.core.recovery.ReplayLog` only *on acknowledgement*
  (log-on-ack), so a replacement's restored snapshot (acked stores)
  and its redelivered batches (unacked suffix) are disjoint by
  construction — together they reproduce the exact per-unit sequence
  the dead incarnation was processing.
- **Supervision**: dead or silent workers are detected (process
  liveness, heartbeat pings), killed if hung, and replaced;
  the replacement is restored from the replay log and the outstanding
  batches are redelivered, all bounded by a restart budget.
- **Observability backhaul**: on drain every worker ships its metrics
  registry dump and tracer spans home; the coordinator absorbs them so
  ``report.metrics`` and ``report.stages`` look exactly like a
  single-process run's.
"""

from __future__ import annotations

import multiprocessing as mp
import time
from dataclasses import dataclass, field
from multiprocessing.connection import wait as _wait_connections

from ..core.batching import EnvelopeBatch
from ..core.biclique import BicliqueConfig
from ..core.ordering import KIND_JOIN, KIND_STORE, Envelope
from ..core.predicates import JoinPredicate
from ..core.recovery import ReplayLog
from ..core.routing import (HashRouting, JoinerGroup, RandomRouting,
                            RoutingStrategy)
from ..core.tuples import JoinResult, StreamTuple
from ..errors import ConfigurationError, ParallelError, WorkerCrashError
from ..obs.registry import MetricsRegistry
from ..obs.stages import StageBreakdown, compute_stage_breakdown
from ..obs.trace import (NOOP_TRACER, SPAN_ENQUEUE, SPAN_ROUTE, SPAN_SCALE,
                         NoopTracer)
from .codec import try_decode_frame
from .commands import (BatchDone, BatchDoneShm, Deliver, Drain, Drained,
                       EvictUnit, Hang, InstallUnit, Pong, Punctuate, Restore,
                       SnapshotResult, Stop, UnitSpec, WorkerFailure,
                       WorkerSpec)
from .shm import (DEFAULT_RING_CAPACITY, RING_OK, BufferArena, TransportStats,
                  try_unpack_record)
from .worker import WorkerHandle

#: Largest router pool whose id string sort equals its index order
#: ("router10" sorts before "router2"); see the module docstring.
MAX_ROUTERS = 10


@dataclass
class ParallelConfig:
    """Tuning knobs of the multiprocess runtime (not of the join).

    Attributes:
        workers: worker processes in the pool.
        transfer_batch: envelopes per :class:`~repro.parallel.commands.
            Deliver` batch — the IPC amortisation unit (the parallel
            analogue of transport micro-batching).
        max_unacked: per-worker in-flight batch bound; the coordinator
            drains acknowledgements instead of sending past it, which
            both bounds redelivery work after a crash and backpressures
            ingestion to the slowest worker.
        start_method: ``multiprocessing`` start method (``None`` =
            platform default).
        heartbeat_interval: seconds of silence before the supervisor
            probes a worker with a ping.
        heartbeat_timeout: seconds an outstanding ping may go
            unanswered before the worker is declared hung and killed.
        supervise_every: run supervision (liveness, pings, output
            pumping) every this-many ingested tuples.
        restart_limit: replacements allowed per worker before the run
            fails with :class:`~repro.errors.WorkerCrashError`.
        command_deadline: seconds a delivered batch may stay
            unacknowledged before the supervisor escalates (``None``
            disables the deadline path; heartbeats still apply).  The
            escalation is capped-exponential: each miss doubles the
            allowance (up to ``deadline_backoff_cap`` × the base) and
            probes the worker with a ping; only after
            ``deadline_retries`` probes is the worker killed and
            replaced — so a merely *slow* worker costs pings, not a
            slot of the restart budget.
        deadline_retries: ping probes sent on successive deadline
            misses before the worker is killed and recovered.
        deadline_backoff_cap: ceiling on the exponential backoff
            multiplier applied to ``command_deadline`` per strike.
        transport: data-plane transport — ``"shm"`` (the default)
            ships batch payloads through per-worker shared-memory
            rings with doorbells on the command/output channels,
            ``"pipe"`` ships every payload as a pickled frame (the
            PR-5 behaviour).  Control-plane commands always use the
            pickle channel, and shm falls back to it per batch when a
            payload doesn't pack or a ring is full — semantics are
            identical either way (the differential suites run both).
        ring_capacity: bytes per shared-memory data ring (two rings
            per worker).  A batch larger than the free span falls
            back to the pipe, so this is a throughput knob, not a
            correctness bound.
    """

    workers: int = 2
    transfer_batch: int = 32
    max_unacked: int = 32
    start_method: str | None = None
    heartbeat_interval: float = 1.0
    heartbeat_timeout: float = 30.0
    supervise_every: int = 64
    restart_limit: int = 3
    command_deadline: float | None = None
    deadline_retries: int = 2
    deadline_backoff_cap: int = 8
    transport: str = "shm"
    ring_capacity: int = DEFAULT_RING_CAPACITY

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ConfigurationError("need at least one worker process")
        if self.transport not in ("pipe", "shm"):
            raise ConfigurationError(
                f"unknown transport {self.transport!r}; pick 'pipe' or 'shm'")
        if self.ring_capacity < 4 * 1024:
            raise ConfigurationError("ring_capacity must be >= 4 KiB")
        if self.transfer_batch < 1:
            raise ConfigurationError("transfer_batch must be >= 1")
        if self.max_unacked < 1:
            raise ConfigurationError("max_unacked must be >= 1")
        if self.supervise_every < 1:
            raise ConfigurationError("supervise_every must be >= 1")
        if self.restart_limit < 0:
            raise ConfigurationError("restart_limit must be >= 0")
        if self.heartbeat_interval <= 0 or self.heartbeat_timeout <= 0:
            raise ConfigurationError("heartbeat settings must be positive")
        if self.command_deadline is not None and self.command_deadline <= 0:
            raise ConfigurationError("command_deadline must be positive")
        if self.deadline_retries < 0:
            raise ConfigurationError("deadline_retries must be >= 0")
        if self.deadline_backoff_cap < 1:
            raise ConfigurationError("deadline_backoff_cap must be >= 1")


@dataclass
class _Stamper:
    """One stamping identity of the coordinator-side router pool."""

    router_id: str
    next_counter: int = 0
    tuples_ingested: int = 0
    punctuations: int = 0


@dataclass
class _Migration:
    """One in-flight unit handoff (quiesce phase).

    A migration lives in the coordinator only while its unit is
    *quiescing*: new envelopes for the unit are held in the
    coordinator-side buffer instead of flushing, and the migration cuts
    over the moment the source worker has settled every outstanding
    batch of the unit.  There is deliberately **no** post-cutover
    phase object: once cutover rewrites the handles' unit sets and the
    routing map, the unit is entirely the target's, and every failure
    after that point is handled by the ordinary recovery path
    (respawn + replay-log restore + redelivery).  That is what makes a
    SIGKILL at any instant of a migration survivable from the unacked
    ledger and replay log alone — there is no migration-specific state
    to lose.
    """

    unit: UnitSpec
    source: WorkerHandle
    target: WorkerHandle
    started: float


@dataclass(frozen=True)
class ParallelReport:
    """Outcome of one multiprocess run.

    Attributes:
        duration: wall-clock seconds from cluster start to drain end.
        tuples_ingested: input tuples stamped and dispatched.
        results: join results produced (exactly-once settled).
        restarts: worker processes replaced after crashes/hangs.
        workers: size of the worker pool.
        quarantines: live workers replaced for sending corrupt frames.
        redeliveries: batches re-sent to replacement workers.
        migrations: unit handoffs completed (elastic scaling).
        aborted_migrations: handoffs abandoned pre-cutover (the unit
            stayed on its source; nothing was transferred).
        workers_added: worker processes added by scale-out.
        workers_retired: worker processes removed by scale-in.
        metrics: the merged coordinator+worker registry snapshot.
        stages: per-stage latency decomposition (traced runs only).
        worker_stats: worker id → per-unit processing counters.
    """

    duration: float
    tuples_ingested: int
    results: int
    restarts: int
    workers: int
    quarantines: int = 0
    redeliveries: int = 0
    migrations: int = 0
    aborted_migrations: int = 0
    workers_added: int = 0
    workers_retired: int = 0
    metrics: dict[str, float] = field(default_factory=dict)
    stages: StageBreakdown | None = None
    worker_stats: dict[str, dict] = field(default_factory=dict)


class ParallelCluster:
    """A join-biclique deployment over real worker processes.

    Mirrors the synchronous engines' API shape: construct with a
    :class:`~repro.core.biclique.BicliqueConfig` and a predicate,
    :meth:`ingest` tuples (either side, interleaved), :meth:`drain` for
    the report — or :meth:`run` for the whole loop.  ``results`` holds
    the emitted :class:`~repro.core.tuples.JoinResult` objects.

    The cluster is also a context manager; exiting it kills any
    still-running workers (a drained cluster is already closed).
    """

    def __init__(self, config: BicliqueConfig, predicate: JoinPredicate,
                 parallel: ParallelConfig | None = None, *,
                 tracer: NoopTracer = NOOP_TRACER, chaos=None,
                 elastic=None) -> None:
        if config.routers > MAX_ROUTERS:
            raise ConfigurationError(
                f"the parallel runtime supports at most {MAX_ROUTERS} "
                f"routers, got {config.routers}: coordinator-side ordering "
                f"requires the router-id string sort to match the pool "
                f"index order (breaks at 'router10' < 'router2')")
        self.config = config
        self.predicate = predicate
        self.parallel = parallel if parallel is not None else ParallelConfig()
        self.tracer = tracer

        self.groups = {
            "R": JoinerGroup("R", config.r_subgroups),
            "S": JoinerGroup("S", config.s_subgroups),
        }
        self.strategy = self._build_strategy()
        r_units = [f"R{i}" for i in range(config.r_joiners)]
        s_units = [f"S{i}" for i in range(config.s_joiners)]
        for unit_id in r_units:
            self.groups["R"].add_unit(unit_id)
        for unit_id in s_units:
            self.groups["S"].add_unit(unit_id)
        self.strategy.on_membership_change(0.0)

        #: Log-on-ack store-envelope retention: the recovery source for
        #: replacement workers (see the module docstring).
        self.replay_log = ReplayLog(
            retention=config.window.seconds + config.expiry_slack)
        self._stampers = [_Stamper(f"router{i}")
                          for i in range(config.routers)]
        self._rr = 0
        self._last_punctuation_ts: float | None = None
        self._epoch = time.time()

        self.results: list[JoinResult] = []
        self.results_count = 0
        self.tuples_ingested = 0
        self.restarts = 0
        self.batches_sent = 0
        #: Live workers replaced because their channel produced garbage.
        self.quarantines = 0
        #: Unacked batches re-sent to replacement workers.
        self.redeliveries = 0
        #: Frames that failed codec validation (CRC/header/length).
        self.corrupt_frames = 0
        #: BatchDone frames whose seq was already settled (duplicate or
        #: stale settlement frames — tolerated, never re-applied).
        self.redundant_acks = 0
        #: Workers killed by per-command deadline escalation.
        self.deadline_kills = 0
        #: Unit handoffs completed (elastic scaling).
        self.migrations_completed = 0
        #: Handoffs abandoned before cutover (unit stayed on source).
        self.migrations_aborted = 0
        #: Worker processes added by scale-out.
        self.workers_added = 0
        #: Worker processes removed by scale-in.
        self.workers_retired = 0
        #: Envelopes settled via acknowledged batches (throughput feed
        #: of the elastic controller's service-rate estimate).
        self.envelopes_settled = 0
        #: Chaos injector (None outside chaos runs).  The cluster only
        #: calls its hook methods; all fault scheduling lives there.
        self._chaos = chaos
        #: Elastic controller (None = fixed pool).  Sampled on ingest;
        #: it drives :meth:`scale_to` and the transport knobs.
        self._elastic = elastic
        self.registry = MetricsRegistry()
        self._ingests_since_supervise = 0
        self._closed = False
        #: unit id → in-flight handoff; a unit present here is
        #: *quiescing* (its envelopes are held, not flushed).
        self._migrations: dict[str, _Migration] = {}

        # Spread each side round-robin across the pool independently, so
        # every worker hosts a mix of R and S units whenever unit counts
        # allow (a worker death then degrades both sides evenly).
        per_worker: list[list[UnitSpec]] = [
            [] for _ in range(self.parallel.workers)]
        for i, unit_id in enumerate(r_units):
            per_worker[i % self.parallel.workers].append(
                UnitSpec(unit_id, "R"))
        for i, unit_id in enumerate(s_units):
            per_worker[i % self.parallel.workers].append(
                UnitSpec(unit_id, "S"))

        self._sample_rate = tracer.sample_rate if tracer.enabled else None
        self._ctx = mp.get_context(self.parallel.start_method)
        self._next_worker_index = self.parallel.workers
        #: Pool-wide data-plane accounting and the recycled pack-buffer
        #: arena, shared by every worker handle (the coordinator loop is
        #: single-threaded, so sharing is free).
        self.transport_stats = TransportStats()
        self._arena = BufferArena()
        self.handles: list[WorkerHandle] = []
        self._unit_worker: dict[str, WorkerHandle] = {}
        self._buffers: dict[str, list[Envelope]] = {}
        for index, units in enumerate(per_worker):
            handle = self._new_handle(f"worker{index}", tuple(units))
            self.handles.append(handle)
            for unit in units:
                self._unit_worker[unit.unit_id] = handle
                self._buffers[unit.unit_id] = []

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    def _new_handle(self, worker_id: str,
                    units: tuple[UnitSpec, ...]) -> WorkerHandle:
        return WorkerHandle(
            self._worker_spec(worker_id, units), self._ctx,
            transport=self.parallel.transport,
            ring_capacity=self.parallel.ring_capacity,
            arena=self._arena, stats=self.transport_stats)

    def _worker_spec(self, worker_id: str,
                     units: tuple[UnitSpec, ...]) -> WorkerSpec:
        return WorkerSpec(
            worker_id=worker_id, units=units,
            predicate=self.predicate, window=self.config.window,
            archive_period=self.config.archive_period,
            timestamp_policy=self.config.timestamp_policy,
            expiry_slack=self.config.expiry_slack,
            trace_sample_rate=self._sample_rate, epoch=self._epoch)

    def _build_strategy(self) -> RoutingStrategy:
        # Mirrors BicliqueEngine._build_strategy: the differential tests
        # rely on both runtimes resolving "auto" identically.
        mode = self.config.routing
        if mode == "auto":
            mode = ("hash" if self.predicate.selectivity_class == "low"
                    else "random")
        if mode == "hash":
            return HashRouting(self.groups, self.predicate,
                               self.config.window,
                               partitions=self.config.hash_partitions)
        return RandomRouting(self.groups)

    @property
    def routing_mode(self) -> str:
        """The resolved routing strategy name."""
        return "hash" if isinstance(self.strategy, HashRouting) else "random"

    def unit_ids(self, side: str | None = None) -> list[str]:
        """Unit ids of one side (or both), engine-style."""
        if side is None:
            return sorted(self._unit_worker)
        return self.groups[side].all_units()

    @property
    def worker_ids(self) -> list[str]:
        return [handle.worker_id for handle in self.handles]

    @property
    def active_worker_ids(self) -> list[str]:
        """Workers accepting units (pool members not being retired)."""
        return [handle.worker_id for handle in self.handles
                if not handle.retiring]

    @property
    def active_worker_count(self) -> int:
        """The pool size :meth:`scale_to` reasons about."""
        return sum(1 for handle in self.handles if not handle.retiring)

    def units_of(self, worker_id: str) -> tuple[str, ...]:
        """Unit ids currently placed on one worker."""
        return tuple(u.unit_id
                     for u in self._require_handle(worker_id).units)

    @property
    def migrating_unit_ids(self) -> tuple[str, ...]:
        """Units currently quiescing toward a new worker, sorted."""
        return tuple(sorted(self._migrations))

    @property
    def backlog_envelopes(self) -> int:
        """Envelopes routed but not yet settled: in-flight unacked
        batches plus coordinator-side buffers (the elastic
        controller's queue-depth signal)."""
        in_flight = sum(len(command.batch)
                        for handle in self.handles
                        for command in handle.unacked.values())
        return in_flight + sum(len(buf) for buf in self._buffers.values())

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------
    def ingest(self, t: StreamTuple) -> None:
        """Stamp, route and dispatch one tuple (either relation).

        Mirrors the engine's ingest path: punctuations are emitted when
        stream time has advanced one punctuation interval, the tuple is
        stamped by the next round-robin stamper, and its store/join
        envelopes are buffered per target unit, shipping as a
        :class:`~repro.parallel.commands.Deliver` batch every
        ``transfer_batch`` envelopes.
        """
        if self._closed:
            raise ParallelError("cluster is closed")
        if self._chaos is not None:
            # Fire every fault scheduled at or before this ingest index.
            self._chaos.on_ingest(self)
        if self._elastic is not None:
            # Sample rates/backlog and, when due, resize the pool and
            # retune the transport knobs (see repro.parallel.elastic).
            self._elastic.on_ingest(self)
        self._ingests_since_supervise += 1
        if self._ingests_since_supervise >= self.parallel.supervise_every:
            self._ingests_since_supervise = 0
            self._supervise()
            self._pump(0)
        self._maybe_punctuate(t.ts)

        stamper = self._stampers[self._rr]
        self._rr = (self._rr + 1) % len(self._stampers)
        counter = stamper.next_counter
        stamper.next_counter += 1
        stamper.tuples_ingested += 1
        self.tuples_ingested += 1

        traced = self.tracer.enabled
        if traced:
            now_wall = time.time() - self._epoch
            self.tracer.record(SPAN_ROUTE, now_wall, stamper.router_id,
                               tuple_id=t.ident, ref_time=t.ts,
                               detail=f"counter={counter}")

        store_env = Envelope(kind=KIND_STORE, router_id=stamper.router_id,
                             counter=counter, tuple=t)
        for unit_id in self.strategy.store_targets(t, t.ts):
            self._buffer(unit_id, store_env)
            if traced:
                self.tracer.record(SPAN_ENQUEUE, now_wall, stamper.router_id,
                                   tuple_id=t.ident,
                                   detail=f"store:{unit_id}")
        join_env = Envelope(kind=KIND_JOIN, router_id=stamper.router_id,
                            counter=counter, tuple=t)
        for unit_id in self.strategy.join_targets(t, t.ts):
            self._buffer(unit_id, join_env)
            if traced:
                self.tracer.record(SPAN_ENQUEUE, now_wall, stamper.router_id,
                                   tuple_id=t.ident,
                                   detail=f"join:{unit_id}")

    def poll(self, timeout: float = 0.0) -> None:
        """Service the runtime without ingesting: apply readable output
        frames (waiting up to ``timeout`` seconds for the first one) and
        run one supervision pass.

        External drivers that ingest at network pace — the ingest
        gateway's bridge thread — call this in their idle gaps so
        settlement, heartbeats and crash recovery keep advancing while
        no tuples arrive.
        """
        if self._closed:
            raise ParallelError("cluster is closed")
        self._pump(timeout)
        self._supervise()

    def flush(self) -> None:
        """Ship every coordinator-side buffered envelope now.

        Ingest batches per unit up to ``transfer_batch``; a driver that
        pauses (end of a client burst, drain of the hand-off queue)
        calls this so short tails don't sit in the buffers waiting for
        a batch to fill.  Quiescing units keep holding, as in
        :meth:`ingest`.
        """
        if self._closed:
            raise ParallelError("cluster is closed")
        for unit_id in self._buffers:
            self._flush_unit(unit_id)

    def _buffer(self, unit_id: str, envelope: Envelope) -> None:
        buf = self._buffers[unit_id]
        buf.append(envelope)
        if len(buf) >= self.parallel.transfer_batch:
            self._flush_unit(unit_id)

    def _flush_unit(self, unit_id: str) -> None:
        buf = self._buffers[unit_id]
        if not buf or unit_id in self._migrations:
            # Quiescing: envelopes stay buffered until cutover re-routes
            # them to the target (the hold is what lets the source's
            # outstanding batches drain to zero).
            return
        handle = self._unit_worker[unit_id]
        # Flow control: never run more than max_unacked batches ahead
        # of a worker; drain acknowledgements (and supervise, in case
        # the worker we are waiting on is dead) until there is room.
        while len(handle.unacked) >= self.parallel.max_unacked:
            self._pump(0.05)
            self._supervise()
            if unit_id in self._migrations:
                # Supervision (chaos scale-in, retirement sweeps) began
                # quiescing this very unit while we waited: hold the
                # batch — delivering to the source now would stretch
                # the quiesce, and delivering after cutover would hit
                # an evicted joiner.
                return
            handle = self._unit_worker[unit_id]  # cutover may re-home it
        batch = EnvelopeBatch(tuple(buf))
        buf.clear()
        handle.deliver(Deliver(seq=handle.next_seq, unit_id=unit_id,
                               batch=batch))
        handle.next_seq += 1
        self.batches_sent += 1

    def _maybe_punctuate(self, ts: float) -> None:
        if self._last_punctuation_ts is None:
            self._last_punctuation_ts = ts
            return
        if ts - self._last_punctuation_ts >= self.config.punctuation_interval:
            self.punctuate_all()
            self._last_punctuation_ts = ts

    def punctuate_all(self) -> None:
        """Broadcast every stamper's punctuation to every worker.

        Buffered envelopes are flushed first: a punctuation promises
        that every counter below it has been sent, and the command
        channel is FIFO per worker, so flushing before sending keeps
        the promise truthful.
        """
        for unit_id in self._buffers:
            self._flush_unit(unit_id)
        for stamper in self._stampers:
            punctuation = Punctuate(router_id=stamper.router_id,
                                    counter=stamper.next_counter)
            for handle in self.handles:
                handle.send(punctuation)
            stamper.punctuations += 1

    # ------------------------------------------------------------------
    # Output pumping and frame application
    # ------------------------------------------------------------------
    def _pump(self, timeout: float) -> None:
        """Apply every output frame currently readable, waiting up to
        ``timeout`` seconds for the first one."""
        if self._chaos is not None:
            # Stalled frames whose hold expired re-enter here, in the
            # per-worker order they were withheld in (FIFO preserved).
            for worker_id, data in self._chaos.release_due():
                handle = self._handle_by_id(worker_id)
                if handle is not None:
                    self._handle_frame(handle, data)
        by_conn = {id(handle.conn): handle for handle in self.handles
                   if handle.conn is not None and not handle.conn.closed}
        if not by_conn:
            return
        ready = _wait_connections(
            [handle.conn for handle in by_conn.values()], timeout)
        for conn in ready:
            self._read_conn(by_conn[id(conn)])

    def _read_conn(self, handle: WorkerHandle) -> None:
        """Drain one worker's output pipe, surviving every frame fault.

        EOF/OSError mean the process died → normal recovery.  A frame
        that fails codec validation from a *live* worker means the
        channel can no longer be trusted → quarantine (kill + recover
        without settling anything else from the pipe), never a
        coordinator crash.
        """
        conn = handle.conn
        try:
            while conn.poll(0):
                data = conn.recv_bytes()
                if self._chaos is not None:
                    payloads = self._chaos.on_output_frame(
                        handle.worker_id, data)
                else:
                    payloads = (data,)
                for payload in payloads:
                    if not self._handle_frame(handle, payload):
                        return
        except (EOFError, OSError):
            # The worker died: recover it (complete frames it left in
            # the pipe still settle — see _drain_leftover).
            self._recover(handle)

    def _handle_frame(self, handle: WorkerHandle, data: bytes) -> bool:
        """Decode and apply one raw frame; returns False when the frame
        was corrupt and the worker has been quarantined (stop reading)."""
        ok, frame = try_decode_frame(data)
        if not ok:
            self.corrupt_frames += 1
            self._quarantine(handle)
            return False
        if isinstance(frame, BatchDoneShm):
            ok, frame = self._resolve_shm_settlement(handle, frame)
            if not ok:
                # The doorbell promised a BatchDone record and the ring
                # couldn't honour it: the channel can no longer be
                # trusted, exactly like a corrupt pipe frame.
                self.corrupt_frames += 1
                self._quarantine(handle)
                return False
            if frame is None:  # redundant doorbell; ring untouched
                return True
        self._apply(handle, frame)
        return True

    def _resolve_shm_settlement(self, handle: WorkerHandle,
                                doorbell: BatchDoneShm):
        """Pop and decode the one ring record a doorbell announced.

        Returns ``(True, BatchDone)`` on success, ``(True, None)`` for
        a redundant doorbell (its seq already settled — a chaos
        duplicate or a stale frame from a previous incarnation; the
        ring is deliberately **not** popped, which is what keeps a
        duplicated doorbell from desynchronising the 1:1 pairing), and
        ``(False, None)`` when the record is missing, corrupt, or not
        the promised settlement — the caller quarantines.
        """
        if doorbell.seq not in handle.unacked:
            self.redundant_acks += 1
            return True, None
        ring = handle.w2c_ring
        if ring is None:
            return False, None
        status, payload = ring.read()
        if status != RING_OK:
            return False, None
        raw = payload
        try:
            if self._chaos is not None:
                # Armed CorruptShmBatch faults flip bits here, between
                # the worker's write and our decode — the shm analogue
                # of on_output_frame.
                payload = self._chaos.on_shm_record(
                    handle.worker_id, payload)
            start = time.perf_counter()
            ok, frame = try_unpack_record(payload)
            self.transport_stats.decode_seconds += \
                time.perf_counter() - start
        finally:
            if isinstance(raw, memoryview):
                raw.release()
        if (not ok or not isinstance(frame, BatchDone)
                or frame.seq != doorbell.seq
                or frame.unit_id != doorbell.unit_id):
            return False, None
        ring.consume()
        return True, frame

    def _apply(self, handle: WorkerHandle, frame) -> None:
        if isinstance(frame, BatchDone):
            if frame.seq not in handle.unacked:
                # Already settled: a duplicated frame, or a stalled
                # frame from a previous incarnation released after its
                # batch was redelivered and re-settled.  First
                # settlement wins; re-applying would double results and
                # replay-log records, so drop it (counted).
                self.redundant_acks += 1
                return
            delivered = handle.delivered_at.get(frame.seq)
            command = handle.ack(frame.seq)
            if delivered is not None:
                # Settle latency minus worker busy time ≈ queueing plus
                # both channel directions — the transit component of
                # the BENCH_e17 codec-timing breakdown.
                self.transport_stats.transit_seconds += max(
                    0.0, time.monotonic() - delivered - frame.busy)
            self.envelopes_settled += len(command.batch)
            # Log-on-ack: only settled stores enter the replay log, so
            # restore material and redelivered batches stay disjoint.
            for env in command.batch:
                if env.kind == KIND_STORE:
                    self.replay_log.record(command.unit_id, env)
            if frame.results:
                self.results_count += len(frame.results)
                if self.config.retain_results:
                    self.results.extend(frame.results)
            handle.note_contact()
        elif isinstance(frame, Pong):
            handle.note_contact()
        elif isinstance(frame, Drained):
            handle.drained = frame
            handle.note_contact()
        elif isinstance(frame, SnapshotResult):
            handle.last_snapshot = frame
            handle.note_contact()
        elif isinstance(frame, WorkerFailure):
            # A logic error in the worker must fail the run loudly,
            # never trigger crash recovery.
            raise ParallelError(
                f"worker {frame.worker_id} failed:\n{frame.message}")
        else:
            raise ParallelError(
                f"unexpected frame {frame!r} from {handle.worker_id}")

    # ------------------------------------------------------------------
    # Supervision and recovery
    # ------------------------------------------------------------------
    def _supervise(self) -> None:
        if self._chaos is not None:
            # Due SIGCONTs (and any other timer-driven chaos work).
            self._chaos.tick(self)
        # Advance handoffs first: completed retirements leave the pool
        # before the liveness sweep, so a cleanly-stopped retiree is
        # never mistaken for a crash and respawned.
        self._advance_migrations()
        for handle in self.handles:
            if not handle.alive:
                self._recover(handle)
            elif (handle.ping_sent is not None
                  and time.monotonic() - handle.ping_sent
                  > self.parallel.heartbeat_timeout):
                # Alive but silent past the timeout: hung.  Kill it and
                # treat it like any other dead worker.
                handle.kill()
                self._recover(handle)
            elif self._deadline_overdue(handle):
                continue  # escalation handled (probe or kill+recover)
            else:
                handle.maybe_ping(self.parallel.heartbeat_interval)

    def _deadline_overdue(self, handle: WorkerHandle) -> bool:
        """Per-command deadline escalation for one live worker.

        The oldest outstanding batch gets ``command_deadline`` seconds,
        doubled per strike up to ``deadline_backoff_cap``×.  Each miss
        below ``deadline_retries`` costs a ping probe (a slow worker
        that eventually acks resets the strikes for free); the final
        miss kills and recovers — spending the restart budget only
        after the backoff ladder is exhausted.
        """
        deadline = self.parallel.command_deadline
        if deadline is None:
            return False
        age = handle.oldest_outstanding_age()
        if age is None:
            return False
        allowance = deadline * min(2 ** handle.deadline_strikes,
                                   self.parallel.deadline_backoff_cap)
        if age <= allowance:
            return False
        if handle.deadline_strikes < self.parallel.deadline_retries:
            handle.deadline_strikes += 1
            handle.probe()
            return True
        self.deadline_kills += 1
        handle.kill()
        self._recover(handle)
        return True

    def _quarantine(self, handle: WorkerHandle) -> None:
        """Replace a live worker whose channel produced a corrupt frame.

        The rest of its pipe is *not* settled: settled frames must form
        a seq-order prefix (restore material and redelivered batches
        are disjoint only then), and everything after a corrupt frame
        is past the tear — it all gets redelivered instead.
        """
        self.quarantines += 1
        if handle.alive:
            handle.kill()
        self._recover(handle, settle_pipe=False)

    def _recover(self, handle: WorkerHandle, *,
                 settle_pipe: bool = True) -> None:
        """Replace a dead worker: drain its last frames, respawn,
        restore acked window state, redeliver the unacked suffix."""
        if handle.restarts >= self.parallel.restart_limit:
            raise WorkerCrashError(
                f"worker {handle.worker_id} exceeded its restart budget "
                f"({self.parallel.restart_limit})")
        if handle.alive:
            # Defensive: every caller kills first, but respawning while
            # the old incarnation still runs would leak a live process
            # that keeps writing into a pipe nobody reads.
            handle.kill()
        if settle_pipe:
            self._drain_leftover(handle)
        handle.respawn()
        self.restarts += 1
        for unit in handle.units:
            # Defensive filter: with log-on-ack nothing outstanding can
            # be in the log, but replaying a redelivered store twice
            # would be state corruption, so exclude by construction.
            outstanding = handle.outstanding_store_keys(unit.unit_id)
            snapshot = tuple(
                env for env in self.replay_log.snapshot(unit.unit_id)
                if (env.counter, env.router_id) not in outstanding)
            if snapshot:
                handle.send(Restore(unit_id=unit.unit_id,
                                    envelopes=snapshot))
        redelivered = handle.redeliver_outstanding()
        self.redeliveries += redelivered
        if self.tracer.enabled:
            self.tracer.record(SPAN_SCALE, time.time() - self._epoch,
                               handle.worker_id,
                               detail=f"respawn:redelivered={redelivered}")

    def _drain_leftover(self, handle: WorkerHandle) -> None:
        """Settle the complete frames a dead worker left in its pipe.

        Every fully written BatchDone still counts (the settlement
        frame arrived); the first torn frame — or EOF — ends the drain.
        Pipe frames go first (their doorbells resolve ring records in
        channel order), then any published ring record whose doorbell
        never made it out of the dead worker.
        """
        conn = handle.conn
        if conn is not None and not conn.closed:
            while True:
                try:
                    if not conn.poll(0):
                        break
                    data = conn.recv_bytes()
                except (EOFError, OSError):
                    break
                if not self._drain_one_leftover(handle, data):
                    break
        self._drain_ring_tail(handle)

    def _drain_one_leftover(self, handle: WorkerHandle, data: bytes) -> bool:
        """Apply one leftover pipe frame; False ends the drain (the
        first torn or unresolvable frame is the tear — everything past
        it gets redelivered instead of settled)."""
        ok, frame = try_decode_frame(data)
        if not ok:
            return False
        if isinstance(frame, BatchDoneShm):
            ok, frame = self._resolve_shm_settlement(handle, frame)
            if not ok:
                return False
            if frame is None:
                return True
        self._apply(handle, frame)
        return True

    def _drain_ring_tail(self, handle: WorkerHandle) -> None:
        """Settle published ring records whose doorbells never left.

        The worker writes a record strictly before sending its doorbell
        and is sequential, so after the pipe drain the ring tail holds
        at most a suffix of fully published, never-announced
        settlements — in seq order, extending the settled prefix.  A
        record that doesn't validate ends the sweep (everything from
        there is redelivered).
        """
        ring = handle.w2c_ring
        if ring is None:
            return
        while True:
            status, payload = ring.read()
            if status != RING_OK:
                return
            try:
                ok, frame = try_unpack_record(payload)
            finally:
                if isinstance(payload, memoryview):
                    payload.release()
            if not ok or not isinstance(frame, BatchDone):
                return
            ring.consume()
            self._apply(handle, frame)

    # ------------------------------------------------------------------
    # Elastic scaling: live unit migration between workers
    # ------------------------------------------------------------------
    #
    # The handoff is two-phase and built entirely from the exactly-once
    # machinery PR 5 introduced — it adds *no* new durable state:
    #
    # 1. **Quiesce** — the unit's envelopes are held in the coordinator
    #    buffer (``_flush_unit`` early-outs) while the source worker
    #    settles its outstanding batches of the unit.  The phase is
    #    represented by one ``_Migration`` record; killing the source
    #    here just routes through normal recovery (respawn + restore +
    #    redeliver) and the quiesce resumes against the replacement.
    #    Aborting here is trivial: drop the record and flushing resumes
    #    toward the source.
    # 2. **Cutover** — once ``unacked_for_unit == 0``, the unit's
    #    complete acked store history *is* the replay log (log-on-ack
    #    with zero outstanding ⇒ nothing is missing, nothing is
    #    duplicated).  The coordinator atomically rewrites both
    #    handles' unit sets (hence their respawn specs) and the routing
    #    map, then sends ``InstallUnit`` + ``Restore(snapshot)`` to the
    #    target and ``EvictUnit`` to the source.  From this instant the
    #    unit is simply *the target's*: a SIGKILL of either side is the
    #    ordinary crash-recovery case, with no migration left to
    #    resume.
    #
    # Worker membership changes never touch routing strategies: units
    # (and therefore ContRand rotations and ContHash epochs) are
    # invariant under worker scaling, which is what keeps this immune
    # to the router-pool counter-skew family of ordering bugs the PR-6
    # ``reset_rotation`` fix pinned (placement moves, stamping doesn't).
    def migrate_unit(self, unit_id: str,
                     target_worker_id: str | None = None) -> str:
        """Begin a live handoff of one unit; returns the target worker.

        The handoff is asynchronous: it quiesces under continued
        ingest and cuts over on a later supervision tick (or during
        :meth:`drain`, which settles all handoffs first).
        """
        if unit_id not in self._unit_worker:
            raise ParallelError(f"unknown unit {unit_id!r}")
        if unit_id in self._migrations:
            raise ParallelError(f"unit {unit_id!r} is already migrating")
        source = self._unit_worker[unit_id]
        if target_worker_id is None:
            target = self._pick_target(exclude=source)
            if target is None:
                raise ParallelError(
                    f"no eligible migration target for {unit_id!r}: "
                    f"every other worker is retiring (or the pool has "
                    f"only one worker)")
        else:
            target = self._require_handle(target_worker_id)
            if target is source:
                raise ParallelError(
                    f"unit {unit_id!r} already lives on {target_worker_id}")
            if target.retiring:
                raise ParallelError(
                    f"worker {target_worker_id} is retiring and cannot "
                    f"receive units")
        unit = next(u for u in source.units if u.unit_id == unit_id)
        self._start_migration(unit, source, target)
        return target.worker_id

    def add_worker(self) -> str:
        """Scale out by one empty worker, then rebalance units onto it.

        Returns the new worker id.  Rebalancing is by live migration,
        so the call returns while handoffs are still quiescing.
        """
        if self._closed:
            raise ParallelError("cluster is closed")
        handle = self._new_handle(f"worker{self._next_worker_index}", ())
        self._next_worker_index += 1
        self.handles.append(handle)
        self.workers_added += 1
        if self.tracer.enabled:
            self.tracer.record(SPAN_SCALE, time.time() - self._epoch,
                               handle.worker_id, detail="add_worker")
        self._rebalance_onto(handle)
        return handle.worker_id

    def retire_worker(self, worker_id: str | None = None) -> str:
        """Scale in one worker: migrate its units away, then stop it.

        Returns the retiring worker id.  The worker leaves the pool
        asynchronously, once its last unit has handed off and its last
        batch has settled; until then it is supervised (and recovered)
        like any other member.
        """
        if self._closed:
            raise ParallelError("cluster is closed")
        if worker_id is None:
            candidates = [h for h in self.handles if not h.retiring]
            if len(candidates) <= 1:
                raise ParallelError("cannot retire the last active worker")
            # Cheapest handoff first: fewest units wins, latest-added
            # breaks ties (LIFO keeps the founding placement stable).
            handle = min(reversed(candidates), key=lambda h: len(h.units))
        else:
            handle = self._require_handle(worker_id)
            if handle.retiring:
                raise ParallelError(f"worker {worker_id} is already retiring")
            if self.active_worker_count <= 1:
                raise ParallelError("cannot retire the last active worker")
        handle.retiring = True
        for unit in handle.units:
            if unit.unit_id not in self._migrations:
                target = self._pick_target(exclude=handle)
                if target is not None:
                    self._start_migration(unit, handle, target)
        if self.tracer.enabled:
            self.tracer.record(SPAN_SCALE, time.time() - self._epoch,
                               handle.worker_id, detail="retire_worker")
        return handle.worker_id

    def scale_to(self, n: int) -> None:
        """Resize the active pool to ``n`` workers by live migration.

        Growing first *cancels* pending retirements (aborting their
        still-quiescing handoffs — the cheap path when the controller
        flaps), then adds fresh workers; shrinking retires the
        cheapest members.  Asynchronous like its building blocks.
        """
        if self._closed:
            raise ParallelError("cluster is closed")
        if n < 1:
            raise ConfigurationError("cannot scale below one worker")
        while self.active_worker_count < n:
            retiring = [h for h in self.handles if h.retiring]
            if retiring:
                self._unretire(retiring[-1])
            else:
                self.add_worker()
        while self.active_worker_count > n:
            self.retire_worker()

    def set_transfer_batch(self, n: int) -> None:
        """Retune the IPC amortisation unit live (elastic controller)."""
        if n < 1:
            raise ConfigurationError("transfer_batch must be >= 1")
        self.parallel.transfer_batch = n

    def set_max_unacked(self, n: int) -> None:
        """Retune the in-flight bound live (elastic controller)."""
        if n < 1:
            raise ConfigurationError("max_unacked must be >= 1")
        self.parallel.max_unacked = n

    # -- handoff state machine ---------------------------------------------
    def _start_migration(self, unit: UnitSpec, source: WorkerHandle,
                         target: WorkerHandle) -> None:
        self._migrations[unit.unit_id] = _Migration(
            unit=unit, source=source, target=target,
            started=time.monotonic())
        if self.tracer.enabled:
            self.tracer.record(
                SPAN_SCALE, time.time() - self._epoch, unit.unit_id,
                detail=f"migrate:{source.worker_id}->{target.worker_id}")

    def _advance_migrations(self) -> None:
        if not self._migrations and not any(h.retiring
                                            for h in self.handles):
            return
        # Units that landed on a since-retiring worker (an inbound
        # handoff completed after retire_worker ran) migrate onward.
        for handle in self.handles:
            if handle.retiring:
                for unit in handle.units:
                    if unit.unit_id not in self._migrations:
                        target = self._pick_target(exclude=handle)
                        if target is not None:
                            self._start_migration(unit, handle, target)
        for unit_id in list(self._migrations):
            migration = self._migrations[unit_id]
            if migration.source.unacked_for_unit(unit_id) == 0:
                self._cutover(migration)
        for handle in list(self.handles):
            if handle.retiring and not handle.units and not handle.unacked:
                self._complete_retirement(handle)

    def _cutover(self, migration: _Migration) -> None:
        """Atomically re-home a quiesced unit onto its target worker.

        Coordinator state first: after the three assignments below a
        crash of either worker recovers into the *post*-migration
        placement (the respawn spec and the replay log agree), so the
        commands that follow are pure delivery, safe to lose.
        """
        unit, source, target = (migration.unit, migration.source,
                                migration.target)
        source.set_units(tuple(u for u in source.units
                               if u.unit_id != unit.unit_id))
        target.set_units(target.units + (unit,))
        self._unit_worker[unit.unit_id] = target
        del self._migrations[unit.unit_id]
        snapshot = tuple(self.replay_log.snapshot(unit.unit_id))
        try:
            target.send(InstallUnit(unit=unit))
            if snapshot:
                target.send(Restore(unit_id=unit.unit_id,
                                    envelopes=snapshot))
        except (OSError, ValueError):
            pass  # dead target: its respawn installs from the new spec
        try:
            source.send(EvictUnit(unit_id=unit.unit_id))
        except (OSError, ValueError):
            pass  # dead source: its respawn spec already excludes it
        self.migrations_completed += 1
        if self.tracer.enabled:
            self.tracer.record(
                SPAN_SCALE, time.time() - self._epoch, unit.unit_id,
                detail=f"cutover:{target.worker_id}"
                       f":snapshot={len(snapshot)}")

    def _abort_migration(self, unit_id: str) -> None:
        """Abandon a still-quiescing handoff; the unit never left its
        source, so dropping the record (and letting flushes resume) is
        the complete rollback."""
        del self._migrations[unit_id]
        self.migrations_aborted += 1

    def _unretire(self, handle: WorkerHandle) -> None:
        """Cancel a pending retirement (scale_to flapped upward)."""
        handle.retiring = False
        for unit_id, migration in list(self._migrations.items()):
            if migration.source is handle:
                self._abort_migration(unit_id)

    def _complete_retirement(self, handle: WorkerHandle) -> None:
        """Remove a fully-drained retiree from the pool.

        Safe by quiesce: zero units and zero unacked batches mean
        every result the worker ever produced has settled and every
        store it held is in the replay log under its new owner.
        """
        try:
            handle.send(Stop())
        except (OSError, ValueError, AttributeError):
            pass
        handle.close_channels()
        if handle.alive:
            handle.kill()
        self.handles.remove(handle)
        self.workers_retired += 1
        if self.tracer.enabled:
            self.tracer.record(SPAN_SCALE, time.time() - self._epoch,
                               handle.worker_id, detail="retired")

    def _pick_target(self, exclude: WorkerHandle) -> WorkerHandle | None:
        """The least-loaded eligible migration target (projected load:
        current units minus outbound handoffs plus inbound ones)."""
        candidates = [h for h in self.handles
                      if h is not exclude and not h.retiring]
        if not candidates:
            return None
        return min(candidates, key=self._projected_units)

    def _projected_units(self, handle: WorkerHandle) -> int:
        outbound = sum(1 for m in self._migrations.values()
                       if m.source is handle)
        inbound = sum(1 for m in self._migrations.values()
                      if m.target is handle)
        return len(handle.units) - outbound + inbound

    def _rebalance_onto(self, handle: WorkerHandle) -> None:
        """Move units onto a fresh worker until it carries a fair share."""
        share = len(self._unit_worker) // max(1, self.active_worker_count)
        while self._projected_units(handle) < share:
            donors = [h for h in self.handles
                      if h is not handle and not h.retiring
                      and self._projected_units(h) > share]
            if not donors:
                donors = [h for h in self.handles
                          if h is not handle and not h.retiring
                          and self._projected_units(h)
                          > self._projected_units(handle) + 1]
            if not donors:
                return
            donor = max(donors, key=self._projected_units)
            movable = [u for u in donor.units
                       if u.unit_id not in self._migrations]
            if not movable:
                return
            # Alternate sides so the newcomer hosts an R/S mix (same
            # policy as the founding placement).
            hosted_r = sum(1 for u in handle.units if u.side == "R") \
                + sum(1 for m in self._migrations.values()
                      if m.target is handle and m.unit.side == "R")
            preferred = "S" if hosted_r > 0 else "R"
            unit = next((u for u in movable if u.side == preferred),
                        movable[0])
            self._start_migration(unit, donor, handle)

    def _settle_migrations(self) -> None:
        """Block until every handoff has cut over and every retiring
        worker has left the pool (drain-time barrier)."""
        while self._migrations or any(h.retiring for h in self.handles):
            self._pump(0.05)
            self._supervise()

    def _handle_by_id(self, worker_id: str) -> WorkerHandle | None:
        for handle in self.handles:
            if handle.worker_id == worker_id:
                return handle
        return None

    def _require_handle(self, worker_id: str) -> WorkerHandle:
        handle = self._handle_by_id(worker_id)
        if handle is None:
            raise ParallelError(f"unknown worker {worker_id!r}")
        return handle

    def kill_worker(self, worker_id: str) -> None:
        """Fault injection: SIGKILL one worker process mid-run.

        Supervision detects the death (at the latest on the next
        supervise tick or pump) and runs the recovery path; the run's
        results remain exactly-once.
        """
        self._require_handle(worker_id).kill()

    def stop_worker(self, worker_id: str) -> int | None:
        """Fault injection: SIGSTOP one worker (hung-but-alive).

        Returns the stopped pid — SIGCONT that pid (not the worker id)
        to resume, since supervision may kill and replace the stopped
        incarnation first.  Exactly-once either way: a resumed worker
        settles its backlog; a replaced one gets it redelivered, and
        any late frames the old incarnation wrote land as redundant
        acks.
        """
        return self._require_handle(worker_id).stop()

    def continue_worker(self, pid: int | None) -> None:
        """Fault injection: SIGCONT a pid stopped by :meth:`stop_worker`.

        Tolerates every way the target can have vanished meanwhile:
        ``None`` (the stop itself raced a kill+respawn and never
        landed), an already-reaped pid, or a pid recycled to a process
        we may not signal — chaos runs hit all three, and none may
        crash the coordinator loop.
        """
        if pid is None:
            return
        try:
            WorkerHandle.resume(pid)
        except OSError:  # resume() guards the common cases; belt+braces
            pass

    def hang_worker(self, worker_id: str, seconds: float) -> None:
        """Fault injection: block one worker's command loop in-band.

        Unlike SIGSTOP the process keeps running — it is the command
        loop that stalls, exactly like a pathological computation.
        """
        self._require_handle(worker_id).send(Hang(seconds=seconds))

    # ------------------------------------------------------------------
    # Drain and reporting
    # ------------------------------------------------------------------
    def drain(self) -> ParallelReport:
        """End-of-stream: flush, punctuate, settle every batch, collect
        each worker's metrics/spans, stop the pool, build the report."""
        if self._closed:
            raise ParallelError("cluster is closed")
        # Settle elasticity first: every handoff cut over, every
        # retiree gone.  The pool is then stable for the drain
        # handshake, and the flush below reaches every buffered
        # envelope (no unit is still held in quiesce).
        self._settle_migrations()
        self.punctuate_all()
        drain_marks: dict[str, int] = {}
        for handle in self.handles:
            handle.send(Drain())
            drain_marks[handle.worker_id] = handle.restarts
        while any(handle.drained is None or handle.unacked
                  for handle in self.handles):
            self._pump(0.1)
            self._supervise()
            for handle in self.handles:
                # A worker replaced mid-drain needs the Drain command
                # again (only Deliver lives in the redelivery ledger).
                if (handle.drained is None
                        and handle.restarts != drain_marks[handle.worker_id]):
                    handle.send(Drain())
                    drain_marks[handle.worker_id] = handle.restarts
        for handle in self.handles:
            handle.send(Stop())
        for handle in self.handles:
            handle.close_channels()
        self._closed = True

        for handle in self.handles:
            assert handle.drained is not None
            self.registry.absorb(handle.drained.metrics)
            if self.tracer.enabled and handle.drained.spans:
                self.tracer.absorb(handle.drained.spans)
        self._export_metrics()
        stages = (compute_stage_breakdown(self.tracer)
                  if self.tracer.enabled else None)
        return ParallelReport(
            duration=time.time() - self._epoch,
            tuples_ingested=self.tuples_ingested,
            results=self.results_count,
            restarts=self.restarts,
            workers=len(self.handles),
            quarantines=self.quarantines,
            redeliveries=self.redeliveries,
            migrations=self.migrations_completed,
            aborted_migrations=self.migrations_aborted,
            workers_added=self.workers_added,
            workers_retired=self.workers_retired,
            metrics=self.registry.snapshot(),
            stages=stages,
            worker_stats={handle.worker_id: dict(handle.drained.stats)
                          for handle in self.handles})

    def _export_metrics(self) -> None:
        for stamper in self._stampers:
            labels = {"router": stamper.router_id}
            self.registry.counter(
                "repro_router_tuples_ingested_total",
                "Input tuples stamped and routed.",
                labels).set_total(stamper.tuples_ingested)
            self.registry.counter(
                "repro_router_punctuations_total",
                "Punctuation broadcasts emitted.",
                labels).set_total(stamper.punctuations)
        self.registry.counter(
            "repro_engine_results_total",
            "Join results produced across all units."
            ).set_total(self.results_count)
        self.registry.counter(
            "repro_parallel_batches_total",
            "Transport batches delivered to worker processes."
            ).set_total(self.batches_sent)
        self.registry.counter(
            "repro_parallel_worker_restarts_total",
            "Worker processes replaced after crashes or hangs."
            ).set_total(self.restarts)
        self.registry.counter(
            "repro_parallel_quarantines_total",
            "Live workers replaced for sending corrupt frames."
            ).set_total(self.quarantines)
        self.registry.counter(
            "repro_parallel_redeliveries_total",
            "Unacked batches re-sent to replacement workers."
            ).set_total(self.redeliveries)
        self.registry.counter(
            "repro_parallel_corrupt_frames_total",
            "Output frames rejected by codec validation."
            ).set_total(self.corrupt_frames)
        self.registry.counter(
            "repro_parallel_redundant_acks_total",
            "Settlement frames for already-settled batches (dropped)."
            ).set_total(self.redundant_acks)
        self.registry.counter(
            "repro_parallel_deadline_kills_total",
            "Workers killed by per-command deadline escalation."
            ).set_total(self.deadline_kills)
        self.registry.gauge(
            "repro_parallel_transport_shm",
            "1 when the shared-memory data plane is active, 0 on pipe."
            ).set(1.0 if self.parallel.transport == "shm" else 0.0)
        self.registry.counter(
            "repro_parallel_shm_batches_total",
            "Data batches shipped as packed shared-memory ring records."
            ).set_total(self.transport_stats.shm_batches)
        self.registry.counter(
            "repro_parallel_pipe_fallbacks_total",
            "Data batches that fell back to the pickled pipe frame "
            "(non-packable payload or full ring)."
            ).set_total(self.transport_stats.pipe_fallbacks)
        self.registry.counter(
            "repro_parallel_codec_encode_seconds",
            "Coordinator wall seconds spent encoding data batches."
            ).set_total(self.transport_stats.encode_seconds)
        self.registry.counter(
            "repro_parallel_codec_decode_seconds",
            "Coordinator wall seconds spent decoding settlement records."
            ).set_total(self.transport_stats.decode_seconds)
        self.registry.counter(
            "repro_parallel_transit_seconds",
            "Settle latency minus worker busy time, summed over batches "
            "(queueing + both channel directions)."
            ).set_total(self.transport_stats.transit_seconds)
        self.registry.counter(
            "repro_parallel_arena_buffers_allocated_total",
            "Pack buffers newly allocated by the coordinator arena."
            ).set_total(self._arena.allocated)
        self.registry.counter(
            "repro_parallel_arena_buffers_reused_total",
            "Pack-buffer acquisitions served from the recycle pool."
            ).set_total(self._arena.reused)
        self.registry.counter(
            "repro_parallel_migrations_total",
            "Unit handoffs completed between workers (elastic scaling)."
            ).set_total(self.migrations_completed)
        self.registry.counter(
            "repro_parallel_migrations_aborted_total",
            "Unit handoffs abandoned before cutover."
            ).set_total(self.migrations_aborted)
        self.registry.counter(
            "repro_parallel_workers_added_total",
            "Worker processes added by scale-out."
            ).set_total(self.workers_added)
        self.registry.counter(
            "repro_parallel_workers_retired_total",
            "Worker processes removed by scale-in."
            ).set_total(self.workers_retired)
        if self._elastic is not None:
            self._elastic.export_metrics(self.registry)
        if self._chaos is not None:
            for kind, injected in sorted(self._chaos.injected.items()):
                self.registry.counter(
                    "repro_parallel_faults_injected_total",
                    "Faults injected by the chaos injector.",
                    {"kind": kind}).set_total(injected)
        self.registry.gauge(
            "repro_parallel_workers",
            "Worker processes in the pool.").set(len(self.handles))

    def run(self, arrivals) -> tuple[list[JoinResult], ParallelReport]:
        """Ingest an arrival sequence (interleaved tuples of both
        relations, event-time order), then drain; engine-style return
        of ``(results, report)``."""
        for t in arrivals:
            self.ingest(t)
        report = self.drain()
        return self.results, report

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Stop every worker; idempotent, and safe mid-migration.

        A second close returns immediately (the first already tore the
        channels down — re-joining dead processes is exactly the bug
        this guards).  Closing with handoffs in flight abandons them:
        quiesce records are dropped (counted as aborted — nothing was
        transferred, nothing is owed) and retiring workers are killed
        along with the rest of the pool.
        """
        if self._closed:
            return
        self._closed = True
        for unit_id in list(self._migrations):
            self._abort_migration(unit_id)
        if self._chaos is not None:
            # SIGCONT anything still stopped so the kills below land on
            # runnable processes and nothing outlives the cluster.
            self._chaos.resume_all()
        for handle in self.handles:
            try:
                handle.send(Stop())
            except (OSError, ValueError):
                pass
        for handle in self.handles:
            handle.close_channels()
            if handle.alive:
                handle.kill()

    def __enter__(self) -> "ParallelCluster":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
