"""Predictive elastic scaling of the multiprocess worker pool.

The simulator's autoscaler (:mod:`repro.cluster.autoscaler`) is a
faithful Kubernetes HPA: *reactive*, scaling on observed CPU after the
fact.  This controller instead follows the predictive cost-model
approach of *Performance Modeling and Vertical Autoscaling of Stream
Joins* (see PAPERS.md): it maintains an explicit model of offered load
and per-worker service capacity and solves for the pool size that keeps
projected utilisation at a set-point —

    demand  = λ + backlog / T_drain          (envelopes / second)
    desired = ceil(demand / (ρ* · μ))        (workers)

where λ is the EWMA envelope arrival rate, the ``backlog / T_drain``
term converts standing queue depth into the extra service rate needed
to clear it within one drain horizon, μ is the per-worker service
capacity (a configured prior, optionally blended with the measured
settlement rate), and ρ* is the target utilisation.  Because demand
anticipates the queue instead of waiting for CPU saturation, the pool
grows *as* a rate step arrives rather than after latency has already
been paid — the paper's argument for model-based over threshold-based
scaling.

The same model retunes the transport knobs with the pool: the IPC
amortisation unit (``transfer_batch``) tracks the per-unit arrival
rate so batches represent a roughly constant time slice, and the
in-flight bound (``max_unacked``) tracks the per-worker share of one
drain horizon so redelivery work after a crash stays proportional to
the horizon, not to the rate.

All decisions flow through :meth:`ParallelCluster.scale_to`, so every
resize is a live, crash-safe unit migration — the controller holds no
state the handoff machinery depends on.

Wall-clock independence: the controller reads time through an
injectable ``clock`` callable.  Benchmarks drive it with a *virtual*
clock derived from the arrival schedule (tuple index / offered rate),
which makes scaling decisions a pure function of the workload — the
E19 stepped-rate run produces the same resize sequence on any machine.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field

from ..errors import ConfigurationError


@dataclass(frozen=True)
class ElasticConfig:
    """Tuning of the predictive scaling model.

    Attributes:
        capacity_prior: assumed per-worker service capacity in
            *envelopes per second* — the μ the model starts from.  With
            ``capacity_smoothing=0`` it is also where μ stays, making
            decisions machine-independent (benchmarks want this).
        capacity_smoothing: EWMA weight of the *measured* settlement
            rate blended into μ (0 = pure prior, 1 = pure measurement).
        rate_smoothing: EWMA weight of new arrival-rate samples in λ.
        target_utilisation: ρ*, the projected-utilisation set-point.
        drain_horizon: seconds within which standing backlog should be
            cleared; converts queue depth into extra demanded rate.
        min_workers / max_workers: pool clamp.
        sample_every: ingests between rate/backlog samples.
        decide_every: seconds (on the controller clock) between scaling
            decisions; samples in between only update the EWMAs.
        tolerance: relative dead-band on projected utilisation — no
            resize while ``|demand / (current·ρ*·μ) - 1| <= tolerance``
            (the HPA anti-flap guard, kept verbatim).
        scale_down_cooldown: seconds after any resize before the pool
            may shrink (one low sample must not kill workers).
        tune_transport: also retune ``transfer_batch``/``max_unacked``.
        batch_horizon: seconds of one unit's arrivals a transfer batch
            should span.
        min_transfer_batch / max_transfer_batch: transfer-batch clamp.
        min_max_unacked / max_max_unacked: in-flight-bound clamp.
    """

    capacity_prior: float = 2000.0
    capacity_smoothing: float = 0.2
    rate_smoothing: float = 0.3
    target_utilisation: float = 0.8
    drain_horizon: float = 2.0
    min_workers: int = 1
    max_workers: int = 8
    sample_every: int = 16
    decide_every: float = 0.5
    tolerance: float = 0.1
    scale_down_cooldown: float = 1.0
    tune_transport: bool = True
    batch_horizon: float = 0.05
    min_transfer_batch: int = 4
    max_transfer_batch: int = 256
    min_max_unacked: int = 4
    max_max_unacked: int = 64

    def __post_init__(self) -> None:
        if self.capacity_prior <= 0:
            raise ConfigurationError("capacity_prior must be positive")
        if not 0.0 <= self.capacity_smoothing <= 1.0:
            raise ConfigurationError("capacity_smoothing must be in [0, 1]")
        if not 0.0 < self.rate_smoothing <= 1.0:
            raise ConfigurationError("rate_smoothing must be in (0, 1]")
        if not 0.0 < self.target_utilisation <= 1.0:
            raise ConfigurationError("target_utilisation must be in (0, 1]")
        if self.drain_horizon <= 0:
            raise ConfigurationError("drain_horizon must be positive")
        if not 1 <= self.min_workers <= self.max_workers:
            raise ConfigurationError(
                "need 1 <= min_workers <= max_workers, got "
                f"{self.min_workers}..{self.max_workers}")
        if self.sample_every < 1:
            raise ConfigurationError("sample_every must be >= 1")
        if self.decide_every <= 0:
            raise ConfigurationError("decide_every must be positive")
        if self.min_transfer_batch < 1 or self.min_max_unacked < 1:
            raise ConfigurationError("transport clamps must be >= 1")


@dataclass(frozen=True)
class ElasticDecision:
    """One scaling evaluation: the model inputs and the verdict."""

    time: float
    arrival_rate: float
    service_rate: float
    backlog: int
    demand: float
    current_workers: int
    desired_workers: int

    @property
    def action(self) -> str:
        if self.desired_workers > self.current_workers:
            return "scale-out"
        if self.desired_workers < self.current_workers:
            return "scale-in"
        return "none"


@dataclass
class ElasticController:
    """The control loop; attach via ``ParallelCluster(..., elastic=...)``.

    The cluster calls :meth:`on_ingest` once per tuple (before
    stamping).  Every ``sample_every`` ingests the controller samples
    the cluster's routed-envelope and settled-envelope counters to
    update its λ and μ estimates; every ``decide_every`` clock seconds
    it evaluates the model and applies the verdict through
    ``cluster.scale_to`` (and, when enabled, the transport setters).
    """

    config: ElasticConfig = field(default_factory=ElasticConfig)
    #: Time source; injectable so benchmarks can drive decisions on a
    #: virtual clock derived from the arrival schedule.
    clock: object = time.monotonic
    decisions: list[ElasticDecision] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._ingests_since_sample = 0
        self._arrival_rate: float | None = None
        self._capacity = self.config.capacity_prior
        self._last_sample_time: float | None = None
        self._last_routed = 0
        self._last_settled = 0
        self._last_decision_time: float | None = None
        self._last_resize_time: float | None = None

    # -- sampling ----------------------------------------------------------
    def on_ingest(self, cluster) -> None:
        """Per-tuple hook: sample when due, decide when due."""
        self._ingests_since_sample += 1
        if self._ingests_since_sample < self.config.sample_every:
            return
        self._ingests_since_sample = 0
        now = self.clock()
        self._sample(cluster, now)
        if (self._last_decision_time is None
                or now - self._last_decision_time
                >= self.config.decide_every):
            self._last_decision_time = now
            self._decide(cluster, now)

    def _sample(self, cluster, now: float) -> None:
        # Offered load in *envelope* terms (what workers actually
        # serve): everything routed = settled + still in flight.
        routed = cluster.envelopes_settled + cluster.backlog_envelopes
        settled = cluster.envelopes_settled
        if self._last_sample_time is None:
            self._last_sample_time = now
            self._last_routed = routed
            self._last_settled = settled
            return
        dt = now - self._last_sample_time
        if dt <= 0:
            return
        rate = (routed - self._last_routed) / dt
        if self._arrival_rate is None:
            self._arrival_rate = rate
        else:
            a = self.config.rate_smoothing
            self._arrival_rate = a * rate + (1 - a) * self._arrival_rate
        if self.config.capacity_smoothing > 0:
            workers = max(1, cluster.active_worker_count)
            measured = (settled - self._last_settled) / dt / workers
            if measured > 0:
                a = self.config.capacity_smoothing
                self._capacity = a * measured + (1 - a) * self._capacity
        self._last_sample_time = now
        self._last_routed = routed
        self._last_settled = settled

    # -- the model ---------------------------------------------------------
    def _decide(self, cluster, now: float) -> None:
        if self._arrival_rate is None:
            return
        cfg = self.config
        backlog = cluster.backlog_envelopes
        demand = self._arrival_rate + backlog / cfg.drain_horizon
        current = cluster.active_worker_count
        per_worker = cfg.target_utilisation * self._capacity
        desired = max(1, math.ceil(demand / per_worker))
        desired = min(max(desired, cfg.min_workers), cfg.max_workers)
        # Anti-flap dead-band: leave the pool alone while projected
        # utilisation sits within tolerance of the set-point.
        if desired != current and current > 0:
            ratio = demand / (current * per_worker)
            if abs(ratio - 1.0) <= cfg.tolerance:
                desired = current
        # Stabilisation: one low sample must not kill workers.
        if (desired < current and self._last_resize_time is not None
                and now - self._last_resize_time < cfg.scale_down_cooldown):
            desired = current
        self.decisions.append(ElasticDecision(
            time=now, arrival_rate=self._arrival_rate,
            service_rate=self._capacity, backlog=backlog, demand=demand,
            current_workers=current, desired_workers=desired))
        if desired != current:
            self._last_resize_time = now
            cluster.scale_to(desired)
        if cfg.tune_transport:
            self._tune_transport(cluster, desired)

    def _tune_transport(self, cluster, workers: int) -> None:
        """Track the model with the transport knobs.

        A transfer batch should span ``batch_horizon`` seconds of one
        unit's arrivals (constant *time* slice, not constant count), and
        the per-worker in-flight bound should cover its share of one
        drain horizon — bounding post-crash redelivery work by the
        horizon instead of the rate.
        """
        cfg = self.config
        rate = self._arrival_rate or 0.0
        units = max(1, len(cluster.unit_ids()))
        batch = round(rate * cfg.batch_horizon / units)
        batch = min(max(batch, cfg.min_transfer_batch),
                    cfg.max_transfer_batch)
        cluster.set_transfer_batch(batch)
        unacked = math.ceil(rate * cfg.drain_horizon
                            / max(1, workers) / batch)
        unacked = min(max(unacked, cfg.min_max_unacked),
                      cfg.max_max_unacked)
        cluster.set_max_unacked(unacked)

    # -- observability -----------------------------------------------------
    def export_metrics(self, registry) -> None:
        """Publish control-loop totals (called from the cluster's
        drain-time export)."""
        registry.counter(
            "repro_elastic_evaluations_total",
            "Elastic control-loop decisions evaluated."
            ).set_total(len(self.decisions))
        registry.counter(
            "repro_elastic_scale_actions_total",
            "Evaluations that resized the worker pool.").set_total(
            sum(1 for d in self.decisions if d.action != "none"))
        if self.decisions:
            last = self.decisions[-1]
            registry.gauge(
                "repro_elastic_desired_workers",
                "Most recent desired pool size.").set(last.desired_workers)
            registry.gauge(
                "repro_elastic_arrival_rate",
                "Most recent EWMA envelope arrival rate (env/s)."
                ).set(last.arrival_rate)
            registry.gauge(
                "repro_elastic_service_rate",
                "Most recent per-worker service capacity (env/s)."
                ).set(last.service_rate)
