"""The wire codec of the multiprocess runtime.

Everything that crosses a process boundary — commands, envelope
batches, punctuations, result frames — travels as one *frame*:

    ``magic (4) | version (1) | reserved (3) | length (4) | crc32 (4)``
    followed by ``length`` bytes of pickled payload.

The payload is pickle (protocol 5): the protocol types on the wire
path (:class:`~repro.core.tuples.StreamTuple`,
:class:`~repro.core.ordering.Envelope`,
:class:`~repro.core.batching.EnvelopeBatch`, the command/output
dataclasses of :mod:`repro.parallel.commands`) are plain frozen
dataclasses that round-trip natively, and ``tests/core/
test_wire_pickle.py`` guards that assumption independently of this
module.  What the explicit header adds over bare pickle:

- **versioning** — a coordinator never feeds a frame from a different
  codec revision to ``pickle.loads``; mixed-version deployments fail
  loudly at the header, not deep inside unpickling;
- **integrity** — the CRC32 of the payload is checked before
  unpickling.  The transport (``multiprocessing`` pipes) already
  preserves message boundaries, but a worker killed mid-``send`` can
  leave a torn frame in the pipe; the checksum turns that into a clean
  :class:`~repro.errors.CodecError` the supervisor treats as
  end-of-stream;
- **bounded trust** — :func:`decode_frame` validates length before
  touching the payload, so a corrupt header cannot make the decoder
  read past the buffer.

Frames are self-contained ``bytes``; the runtime sends them with
``Connection.send_bytes`` (outputs) and as queue items (commands), so
this module is the single serialisation layer in both directions.
"""

from __future__ import annotations

import pickle
import struct
import zlib
from typing import Any

from ..errors import CodecError

#: Frame magic: identifies a repro parallel-runtime wire frame.
MAGIC = b"RPWF"
#: Current codec revision; bump on any incompatible payload change.
VERSION = 1

#: ``magic | version | reserved×3 | payload length | payload crc32``.
_HEADER = struct.Struct(">4sB3xII")
HEADER_SIZE = _HEADER.size

#: Pickle protocol 5 (Python 3.8+): out-of-band-capable, fastest framing.
_PICKLE_PROTOCOL = 5


def encode_frame(obj: Any) -> bytes:
    """Serialise one payload object into a self-contained wire frame."""
    payload = pickle.dumps(obj, protocol=_PICKLE_PROTOCOL)
    return _HEADER.pack(MAGIC, VERSION, len(payload),
                        zlib.crc32(payload)) + payload


def decode_frame(data: bytes) -> Any:
    """Decode one frame produced by :func:`encode_frame`.

    Raises :class:`~repro.errors.CodecError` on a short buffer, wrong
    magic, unknown version, length mismatch or checksum failure — the
    payload is never unpickled unless the header fully validates.
    """
    if len(data) < HEADER_SIZE:
        raise CodecError(
            f"frame too short: {len(data)} bytes < {HEADER_SIZE}-byte header")
    magic, version, length, crc = _HEADER.unpack_from(data)
    if magic != MAGIC:
        raise CodecError(f"bad frame magic {magic!r} (expected {MAGIC!r})")
    if version != VERSION:
        raise CodecError(
            f"unsupported codec version {version} (speaking {VERSION})")
    payload = data[HEADER_SIZE:]
    if len(payload) != length:
        raise CodecError(
            f"frame length mismatch: header says {length}, "
            f"got {len(payload)} payload bytes")
    if zlib.crc32(payload) != crc:
        raise CodecError("frame checksum mismatch (torn write?)")
    return pickle.loads(payload)


def try_decode_frame(data: bytes) -> tuple[bool, Any]:
    """Best-effort decode: ``(True, obj)`` or ``(False, None)``.

    Used when draining the output pipe of a dead worker, where the last
    frame may be torn: a valid prefix of frames is applied, the first
    corrupt one ends the drain instead of raising.
    """
    try:
        return True, decode_frame(data)
    except (CodecError, pickle.UnpicklingError, EOFError, AttributeError,
            ImportError, IndexError):
        return False, None
