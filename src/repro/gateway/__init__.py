"""The network ingest gateway: the system's asyncio TCP/WebSocket edge.

Until this package existed every tuple entered the system through
in-process calls; :class:`IngestGateway` gives it a real network edge
fronting the live :class:`~repro.parallel.parallel_cluster.
ParallelCluster`, with the PR-3 admission machinery as its overload
story and the metrics registry's Prometheus exposition served live.
Three layers plus a client:

- :mod:`repro.gateway.protocol` — the wire formats: newline-delimited
  JSON records over TCP and a minimal RFC-6455 WebSocket codec
  (stdlib only), both total over arbitrary bytes;
- :mod:`repro.gateway.server` — :class:`IngestGateway`: the asyncio
  accept loop in its own thread, a bounded hand-off queue into the
  cluster bridge thread, ADMIT/DEFER/SHED admission verdicts mapped
  to acks, read-pausing backpressure and shed replies;
- :mod:`repro.gateway.http` — ``GET /metrics`` (Prometheus text
  exposition), ``/healthz`` and ``/report``;
- :mod:`repro.gateway.client` — :class:`GatewayClient`, the
  at-least-once bench/test driver whose retry loop composes with
  server-side dedup into exactly-once admission
  (``python -m repro serve`` wires a live gateway up).

See ``docs/serving.md`` for the protocol spec and operational notes.
"""

from .client import (MALFORMED_FRAME, SLOWLORIS_PREFIX, ClientReport,
                     GatewayClient, open_slowloris)
from .http import METRICS_CONTENT_TYPE, handle_http_request, render_response
from .protocol import (MAX_RECORD_BYTES, STATUS_ADMITTED, STATUS_DUPLICATE,
                       STATUS_ERROR, STATUS_SHED, LineDecoder, Record,
                       WsFrame, WsMessageAssembler, decode_record,
                       decode_reply, encode_record, encode_reply,
                       encode_ws_frame, try_decode_ws_frame)
from .server import GatewayConfig, GatewayStats, IngestGateway

__all__ = [
    "ClientReport",
    "GatewayClient",
    "GatewayConfig",
    "GatewayStats",
    "IngestGateway",
    "LineDecoder",
    "MALFORMED_FRAME",
    "MAX_RECORD_BYTES",
    "METRICS_CONTENT_TYPE",
    "SLOWLORIS_PREFIX",
    "Record",
    "STATUS_ADMITTED",
    "STATUS_DUPLICATE",
    "STATUS_ERROR",
    "STATUS_SHED",
    "WsFrame",
    "WsMessageAssembler",
    "decode_record",
    "decode_reply",
    "encode_record",
    "encode_reply",
    "encode_ws_frame",
    "handle_http_request",
    "open_slowloris",
    "render_response",
    "try_decode_ws_frame",
]
