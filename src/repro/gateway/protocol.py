"""Wire protocols of the network ingest gateway.

Two client-facing framings decode to the same thing — one JSON
*record* per frame, turned into a :class:`~repro.core.tuples.
StreamTuple` at the edge:

- the **line protocol**: newline-delimited JSON over a raw TCP
  connection.  :class:`LineDecoder` reassembles complete lines from
  arbitrarily torn reads (a record may arrive byte by byte, or many
  records in one segment) and bounds the in-progress line so a client
  cannot balloon gateway memory by never sending the newline;
- a **minimal RFC-6455 WebSocket** layer: :func:`parse_http_request` +
  :func:`websocket_accept` for the upgrade handshake,
  :func:`try_decode_ws_frame` / :func:`encode_ws_frame` for the frame
  codec (76-style masking, 7/16/64-bit lengths, control frames), and
  :class:`WsMessageAssembler` for fragmented messages.  Stdlib only.

Records and replies
-------------------

A record is a JSON object with required ``relation`` (string), ``ts``
(finite number) and ``values`` (object) fields plus an optional
integer ``seq``.  A client that supplies ``seq`` names the tuple's
stable identity ``(relation, seq)`` — the gateway deduplicates
resubmissions on it, which is what turns the client's at-least-once
retry loop into exactly-once admission.  Records without ``seq`` are
numbered by the gateway (no cross-reconnect dedup).

The gateway answers every received frame with exactly one JSON reply
line carrying the per-connection sequence number ``seq`` (0-based
arrival index on this connection) and a ``status``:

``admitted``   the record was accepted into the hand-off queue;
``shed``       the admission policy rejected it (retryable);
``duplicate``  its ``(relation, seq)`` identity was already admitted;
``error``      the frame was malformed (``error`` holds the reason).

Replies are emitted in arrival order, so a client can match them to
its sends by counting — no request ids needed.

Every decoder in this module is *total* over byte strings: malformed
input raises :class:`~repro.errors.ProtocolError` (or reports
incompleteness), never anything else — fuzzed in
``tests/gateway/test_protocol.py`` and ``test_websocket.py``.
"""

from __future__ import annotations

import base64
import hashlib
import json
import math
import struct
from dataclasses import dataclass

from ..core.tuples import StreamTuple
from ..errors import ProtocolError

#: Default bound on one record frame (line or WebSocket message).
MAX_RECORD_BYTES = 64 * 1024

#: Reply statuses (see the module docstring).
STATUS_ADMITTED = "admitted"
STATUS_SHED = "shed"
STATUS_DUPLICATE = "duplicate"
STATUS_ERROR = "error"

# ---------------------------------------------------------------------------
# JSON records
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Record:
    """One decoded client record, pre-admission.

    ``seq`` is the client-supplied identity sequence or ``None`` when
    the gateway should assign one (see the module docstring).
    """

    relation: str
    ts: float
    values: dict
    seq: int | None = None

    def to_tuple(self, seq: int | None = None) -> StreamTuple:
        """Materialise the :class:`StreamTuple` (``seq`` fills a
        gateway-assigned sequence when the client sent none)."""
        resolved = self.seq if self.seq is not None else seq
        if resolved is None:
            raise ProtocolError("record has no sequence number")
        return StreamTuple(relation=self.relation, ts=self.ts,
                           values=self.values, seq=resolved)


def decode_record(data: bytes | str) -> Record:
    """Parse one record frame; raises :class:`ProtocolError` on any
    malformed input (bad UTF-8, bad JSON, wrong shape, wrong types)."""
    try:
        text = data.decode("utf-8") if isinstance(data, bytes) else data
    except UnicodeDecodeError as exc:
        raise ProtocolError(f"record is not UTF-8: {exc}") from None
    try:
        obj = json.loads(text)
    except (json.JSONDecodeError, ValueError) as exc:
        raise ProtocolError(f"record is not JSON: {exc}") from None
    if not isinstance(obj, dict):
        raise ProtocolError(
            f"record must be a JSON object, got {type(obj).__name__}")
    relation = obj.get("relation")
    if not isinstance(relation, str) or not relation:
        raise ProtocolError("record needs a non-empty string 'relation'")
    ts = obj.get("ts")
    if isinstance(ts, bool) or not isinstance(ts, (int, float)):
        raise ProtocolError("record needs a numeric 'ts'")
    ts = float(ts)
    if not math.isfinite(ts):
        raise ProtocolError("record 'ts' must be finite")
    values = obj.get("values")
    if not isinstance(values, dict):
        raise ProtocolError("record needs an object 'values'")
    seq = obj.get("seq")
    if seq is not None and (isinstance(seq, bool)
                            or not isinstance(seq, int) or seq < 0):
        raise ProtocolError("record 'seq' must be a non-negative integer")
    return Record(relation=relation, ts=ts, values=values, seq=seq)


def encode_record(t: StreamTuple) -> bytes:
    """One tuple as a line-protocol frame (newline-terminated)."""
    payload = {"relation": t.relation, "ts": t.ts,
               "values": dict(t.values), "seq": t.seq}
    return json.dumps(payload, separators=(",", ":")).encode() + b"\n"


def encode_reply(seq: int, status: str, **extra) -> bytes:
    """One reply as a newline-terminated JSON line."""
    payload = {"seq": seq, "status": status}
    payload.update(extra)
    return json.dumps(payload, separators=(",", ":")).encode() + b"\n"


def decode_reply(line: bytes | str) -> dict:
    """Parse one reply line (client side); raises ProtocolError."""
    try:
        text = line.decode("utf-8") if isinstance(line, bytes) else line
        obj = json.loads(text)
    except (UnicodeDecodeError, json.JSONDecodeError, ValueError) as exc:
        raise ProtocolError(f"reply is not JSON: {exc}") from None
    if not isinstance(obj, dict) or "status" not in obj:
        raise ProtocolError(f"reply has no status: {obj!r}")
    return obj


# ---------------------------------------------------------------------------
# Line framing
# ---------------------------------------------------------------------------


class LineDecoder:
    """Reassembles newline-delimited frames from torn TCP reads.

    ``feed`` accepts any byte split — one byte at a time, or a segment
    holding many pipelined frames — and returns the *complete* lines
    it closed (without the terminator; a bare ``\\r`` before the
    ``\\n`` is stripped).  The in-progress tail is bounded by
    ``max_line``: exceeding it raises :class:`ProtocolError` once,
    after which the decoder must be discarded (the connection is
    beyond resynchronisation).
    """

    def __init__(self, max_line: int = MAX_RECORD_BYTES) -> None:
        if max_line < 2:
            raise ProtocolError("max_line must be >= 2")
        self.max_line = max_line
        self._tail = bytearray()

    @property
    def pending_bytes(self) -> int:
        """Bytes of the incomplete trailing line (slowloris signal)."""
        return len(self._tail)

    def feed(self, data: bytes) -> list[bytes]:
        """Absorb one read; return the frames it completed, in order."""
        self._tail.extend(data)
        if b"\n" not in self._tail:
            if len(self._tail) > self.max_line:
                raise ProtocolError(
                    f"line exceeds {self.max_line} bytes without a "
                    f"terminator")
            return []
        *complete, tail = bytes(self._tail).split(b"\n")
        self._tail = bytearray(tail)
        if len(self._tail) > self.max_line:
            raise ProtocolError(
                f"line exceeds {self.max_line} bytes without a terminator")
        lines = []
        for line in complete:
            if len(line) > self.max_line:
                raise ProtocolError(f"line exceeds {self.max_line} bytes")
            lines.append(line.rstrip(b"\r"))
        return lines


# ---------------------------------------------------------------------------
# HTTP request parsing (upgrade handshake + the /metrics endpoint)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class HttpRequest:
    """One parsed HTTP/1.x request head (no body)."""

    method: str
    path: str
    headers: dict[str, str]

    def header(self, name: str, default: str = "") -> str:
        return self.headers.get(name.lower(), default)


def parse_http_request(head: bytes) -> HttpRequest:
    """Parse a request head (everything before the blank line).

    Header names are lower-cased; duplicate headers keep the first
    value.  Raises :class:`ProtocolError` on anything that is not a
    minimal well-formed HTTP/1.x request.
    """
    try:
        text = head.decode("latin-1")
    except UnicodeDecodeError as exc:  # pragma: no cover - latin-1 is total
        raise ProtocolError(f"undecodable request head: {exc}") from None
    lines = text.split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise ProtocolError(f"malformed request line {lines[0]!r}")
    method, path = parts[0], parts[1]
    if not method.isalpha():
        raise ProtocolError(f"malformed method {method!r}")
    headers: dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep or not name.strip():
            raise ProtocolError(f"malformed header line {line!r}")
        headers.setdefault(name.strip().lower(), value.strip())
    return HttpRequest(method=method, path=path, headers=headers)


# ---------------------------------------------------------------------------
# RFC 6455 WebSocket: handshake
# ---------------------------------------------------------------------------

#: The protocol-fixed handshake GUID (RFC 6455 §1.3).
WS_GUID = "258EAFA5-E914-47DA-95CA-C5AB0DC85B11"

#: Frame opcodes.
OP_CONT = 0x0
OP_TEXT = 0x1
OP_BINARY = 0x2
OP_CLOSE = 0x8
OP_PING = 0x9
OP_PONG = 0xA

_CONTROL_OPCODES = frozenset({OP_CLOSE, OP_PING, OP_PONG})
_DATA_OPCODES = frozenset({OP_CONT, OP_TEXT, OP_BINARY})


def websocket_accept(key: str) -> str:
    """The ``Sec-WebSocket-Accept`` value for a client key."""
    digest = hashlib.sha1((key + WS_GUID).encode("ascii")).digest()
    return base64.b64encode(digest).decode("ascii")


def is_websocket_upgrade(request: HttpRequest) -> bool:
    """Does this request ask for an RFC-6455 upgrade?"""
    return (request.method == "GET"
            and "websocket" in request.header("upgrade").lower()
            and bool(request.header("sec-websocket-key")))


def websocket_handshake_response(request: HttpRequest) -> bytes:
    """The 101 response completing an upgrade handshake."""
    key = request.header("sec-websocket-key")
    if not key:
        raise ProtocolError("upgrade request lacks Sec-WebSocket-Key")
    return ("HTTP/1.1 101 Switching Protocols\r\n"
            "Upgrade: websocket\r\n"
            "Connection: Upgrade\r\n"
            f"Sec-WebSocket-Accept: {websocket_accept(key)}\r\n"
            "\r\n").encode("ascii")


# ---------------------------------------------------------------------------
# RFC 6455 WebSocket: frame codec
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class WsFrame:
    """One decoded WebSocket frame."""

    fin: bool
    opcode: int
    payload: bytes


def try_decode_ws_frame(buffer: bytes | bytearray | memoryview, *,
                        require_mask: bool = True,
                        max_payload: int = MAX_RECORD_BYTES,
                        ) -> tuple[int, WsFrame] | None:
    """Decode one frame from the head of ``buffer``.

    Returns ``None`` while the buffer holds only a frame prefix (read
    more), or ``(consumed_bytes, frame)`` for a complete frame.
    Protocol violations — reserved bits, unknown opcodes, oversized or
    fragmented control frames, a missing client mask when
    ``require_mask``, payloads beyond ``max_payload`` — raise
    :class:`ProtocolError`; nothing else escapes, whatever the bytes.
    """
    buf = bytes(buffer[:14])  # longest possible header
    if len(buf) < 2:
        return None
    b0, b1 = buf[0], buf[1]
    fin = bool(b0 & 0x80)
    if b0 & 0x70:
        raise ProtocolError("reserved frame bits set (no extension "
                            "was negotiated)")
    opcode = b0 & 0x0F
    if opcode not in _DATA_OPCODES and opcode not in _CONTROL_OPCODES:
        raise ProtocolError(f"unknown opcode {opcode:#x}")
    masked = bool(b1 & 0x80)
    if require_mask and not masked:
        raise ProtocolError("client frames must be masked (RFC 6455 §5.1)")
    length = b1 & 0x7F
    offset = 2
    if opcode in _CONTROL_OPCODES:
        if length > 125:
            raise ProtocolError("control frames carry at most 125 bytes")
        if not fin:
            raise ProtocolError("control frames must not be fragmented")
    if length == 126:
        if len(buf) < offset + 2:
            return None
        (length,) = struct.unpack_from("!H", buf, offset)
        offset += 2
    elif length == 127:
        if len(buf) < offset + 8:
            return None
        (length,) = struct.unpack_from("!Q", buf, offset)
        offset += 8
        if length > 2**62:
            raise ProtocolError("64-bit length with the top bit set")
    if length > max_payload:
        raise ProtocolError(
            f"frame payload of {length} bytes exceeds the {max_payload} "
            f"byte bound")
    mask = b""
    if masked:
        if len(buf) < offset + 4:
            return None
        mask = buf[offset:offset + 4]
        offset += 4
    total = offset + length
    if len(buffer) < total:
        return None
    payload = bytes(buffer[offset:total])
    if masked:
        payload = _mask(payload, mask)
    return total, WsFrame(fin=fin, opcode=opcode, payload=payload)


def encode_ws_frame(payload: bytes, opcode: int = OP_TEXT, *,
                    fin: bool = True, mask: bytes | None = None) -> bytes:
    """Encode one frame (``mask`` = 4-byte key for client frames)."""
    if opcode not in _DATA_OPCODES and opcode not in _CONTROL_OPCODES:
        raise ProtocolError(f"unknown opcode {opcode:#x}")
    if opcode in _CONTROL_OPCODES and len(payload) > 125:
        raise ProtocolError("control frames carry at most 125 bytes")
    head = bytearray()
    head.append((0x80 if fin else 0) | opcode)
    mask_bit = 0x80 if mask is not None else 0
    n = len(payload)
    if n <= 125:
        head.append(mask_bit | n)
    elif n <= 0xFFFF:
        head.append(mask_bit | 126)
        head.extend(struct.pack("!H", n))
    else:
        head.append(mask_bit | 127)
        head.extend(struct.pack("!Q", n))
    if mask is not None:
        if len(mask) != 4:
            raise ProtocolError("mask keys are exactly 4 bytes")
        head.extend(mask)
        payload = _mask(payload, mask)
    return bytes(head) + payload


def _mask(payload: bytes, key: bytes) -> bytes:
    """XOR-mask/unmask (the operation is its own inverse)."""
    repeated = (key * (len(payload) // 4 + 1))[:len(payload)]
    return bytes(a ^ b for a, b in zip(payload, repeated))


class WsMessageAssembler:
    """Reassembles complete messages from (possibly fragmented) frames.

    Data frames accumulate until FIN; control frames pass through
    untouched (they may interleave with a fragmented message).  The
    accumulated message is bounded by ``max_payload`` so fragmentation
    cannot sidestep the frame-size bound.
    """

    def __init__(self, max_payload: int = MAX_RECORD_BYTES) -> None:
        self.max_payload = max_payload
        self._parts: list[bytes] = []
        self._opcode: int | None = None

    @property
    def pending_bytes(self) -> int:
        """Bytes of the incomplete message (slowloris signal)."""
        return sum(len(p) for p in self._parts)

    def add(self, frame: WsFrame) -> WsFrame | None:
        """Absorb one frame; returns the completed message (a frame
        with the initial data opcode and the stitched payload), the
        control frame itself, or ``None`` mid-fragmentation."""
        if frame.opcode in _CONTROL_OPCODES:
            return frame
        if frame.opcode == OP_CONT:
            if self._opcode is None:
                raise ProtocolError("continuation frame without a message")
        else:
            if self._opcode is not None:
                raise ProtocolError("new data frame inside a fragmented "
                                    "message")
            self._opcode = frame.opcode
        self._parts.append(frame.payload)
        if self.pending_bytes > self.max_payload:
            raise ProtocolError(
                f"fragmented message exceeds the {self.max_payload} byte "
                f"bound")
        if not frame.fin:
            return None
        message = WsFrame(fin=True, opcode=self._opcode,
                          payload=b"".join(self._parts))
        self._parts.clear()
        self._opcode = None
        return message
