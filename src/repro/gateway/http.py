"""The gateway's plain-HTTP observability endpoint.

Three routes, all read-only and served straight off the ingest port
(or a dedicated ``http_port`` — see :class:`~repro.gateway.server.
GatewayConfig`):

- ``GET /metrics`` — the live :class:`~repro.obs.registry.
  MetricsRegistry` in Prometheus text exposition format.  The
  gateway's registered collector publishes the ``repro_gateway_*``
  counters (and the overload manager's ``repro_overload_*`` family)
  immediately before rendering, so a scrape mid-traffic sees current
  totals;
- ``GET /healthz`` — liveness as a tiny JSON document;
- ``GET /report`` — the full edge report (connection/record counters,
  hand-off depth, cluster progress, the overload ledger) as JSON.

Anything else is a 404; non-GET/HEAD methods are a 405.  This is an
exposition endpoint, not a web framework: one request per connection,
``Connection: close``, no keep-alive.
"""

from __future__ import annotations

import json

from .protocol import HttpRequest

#: Prometheus text exposition content type (version 0.0.4).
METRICS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_STATUS_LINES = {
    200: "200 OK",
    404: "404 Not Found",
    405: "405 Method Not Allowed",
}


def render_response(status: int, content_type: str,
                    body: bytes | str) -> bytes:
    """One complete HTTP/1.1 response (headers + body)."""
    if isinstance(body, str):
        body = body.encode("utf-8")
    status_line = _STATUS_LINES.get(status, f"{status} Error")
    head = (f"HTTP/1.1 {status_line}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: close\r\n"
            f"\r\n")
    return head.encode("ascii") + body


def handle_http_request(request: HttpRequest, gateway) -> bytes:
    """Route one parsed request against a live gateway."""
    if request.method not in ("GET", "HEAD"):
        return render_response(
            405, "application/json",
            json.dumps({"error": f"method {request.method} not allowed"}))
    path = request.path.split("?", 1)[0]
    if path == "/metrics":
        gateway.registry.collect()
        return render_response(200, METRICS_CONTENT_TYPE,
                               gateway.registry.expose_text())
    if path == "/healthz":
        return render_response(200, "application/json", json.dumps({
            "status": "ok",
            "open_connections": gateway.stats.open_connections,
            "handoff_depth": gateway.handoff.depth(),
        }))
    if path == "/report":
        return render_response(200, "application/json",
                               json.dumps(gateway.report(), sort_keys=True))
    return render_response(404, "application/json",
                           json.dumps({"error": f"unknown path {path}"}))
