"""The asyncio ingest gateway fronting a live :class:`ParallelCluster`.

:class:`IngestGateway` is the system's network edge.  It owns two
threads next to the caller's:

- the **asyncio thread** runs the event loop with the TCP acceptor.
  Every connection is sniffed on its first bytes: an HTTP request line
  either upgrades to RFC-6455 WebSocket ingest (``Upgrade: websocket``)
  or is answered by the :mod:`repro.gateway.http` endpoint
  (``/metrics``, ``/healthz``, ``/report``); anything else speaks the
  newline-delimited JSON line protocol.  Records decode at the edge
  into :class:`~repro.core.tuples.StreamTuple`\\ s and every frame is
  answered with exactly one in-order JSON reply;
- the **bridge thread** pops admitted tuples off a bounded hand-off
  queue and drives ``cluster.ingest`` / ``cluster.poll`` /
  ``cluster.flush`` — :class:`~repro.parallel.parallel_cluster.
  ParallelCluster` is single-threaded by design, so exactly one thread
  ever touches it while the gateway runs.

Overload semantics at the edge
------------------------------

The hand-off queue is the gateway's *entry queue* in the PR-3 sense:
its fill ratio is registered with the
:class:`~repro.overload.manager.OverloadManager` via
``attach_entry_source``, so the same admission policies that rule the
simulated runtimes rule the network edge.  Per offered record the
verdict maps to connection behaviour:

- **ADMIT** — the tuple enters the hand-off queue and the client gets
  an ``admitted`` reply (its acknowledgement);
- **DEFER** — the connection's transport stops reading
  (``pause_reading``), the handler retries admission every
  ``admission_retry`` seconds, and a client that stays deferred past
  ``defer_deadline`` is shed-and-disconnected — backpressure can slow
  a client down but never wedge the accept loop;
- **SHED** — an explicit ``shed`` reply; shedding is *retryable*, so a
  client that resubmits keeps at-least-once semantics while the ledger
  still counts every offer (``offered == admitted + shed`` holds
  end-to-end).

Duplicates (a client-supplied ``(relation, seq)`` identity that was
already admitted) are acknowledged with a ``duplicate`` reply and shed
from the ledger's point of view — resubmission after a lost ack is how
the client's at-least-once retry becomes exactly-once admission.

Slow clients: a connection whose partially-received frame makes no
progress for ``idle_deadline`` seconds is disconnected (the slowloris
guard), as is one whose reply backlog won't drain within
``drain_deadline`` seconds.
"""

from __future__ import annotations

import asyncio
import re
import threading
import time
from collections import deque
from dataclasses import dataclass

from ..core.tuples import StreamTuple
from ..errors import ConfigurationError, GatewayError, ProtocolError
from ..obs.registry import MetricsRegistry
from ..overload.policies import ADMIT, SHED
from .http import handle_http_request
from .protocol import (MAX_RECORD_BYTES, OP_CLOSE, OP_PING, OP_PONG,
                       STATUS_ADMITTED, STATUS_DUPLICATE, STATUS_ERROR,
                       STATUS_SHED, LineDecoder, Record, WsMessageAssembler,
                       decode_record, encode_reply, encode_ws_frame,
                       is_websocket_upgrade, parse_http_request,
                       try_decode_ws_frame, websocket_handshake_response)

#: An HTTP request line opens with an upper-case method and a space;
#: line-protocol frames open with JSON (sniffed on the first bytes).
_HTTP_SNIFF = re.compile(rb"^[A-Z]{2,8} ")


@dataclass
class GatewayConfig:
    """Tuning knobs of the network edge.

    Attributes:
        host: bind address of the ingest listener.
        port: ingest port (``0`` = ephemeral; the bound port is
            published as :attr:`IngestGateway.port` after ``start``).
        http_port: optional second listener that speaks *only* HTTP
            (``/metrics`` scrapers that must not share the ingest
            port); ``None`` disables it — the ingest port answers
            plain HTTP requests either way.
        handoff_depth: bound on the hand-off queue between the asyncio
            thread and the bridge thread; its fill ratio is the
            admission severity at the edge.
        admission_retry: seconds between admission retries while a
            connection is deferred (read-paused).
        defer_deadline: seconds a record may stay deferred before the
            gateway sheds it and disconnects the client.
        idle_deadline: seconds a *partially received* frame may make no
            progress before the connection is dropped (slowloris
            guard); complete-frame-aligned idleness is unbounded.
        drain_deadline: seconds a reply write may take to drain before
            the client is considered dead and disconnected.
        max_record_bytes: per-frame size bound (line or WS message).
    """

    host: str = "127.0.0.1"
    port: int = 0
    http_port: int | None = None
    handoff_depth: int = 1024
    admission_retry: float = 0.005
    defer_deadline: float = 5.0
    idle_deadline: float = 2.0
    drain_deadline: float = 5.0
    max_record_bytes: int = MAX_RECORD_BYTES

    def __post_init__(self) -> None:
        if self.handoff_depth < 1:
            raise ConfigurationError("handoff_depth must be >= 1")
        if self.admission_retry <= 0:
            raise ConfigurationError("admission_retry must be > 0")
        for attr in ("defer_deadline", "idle_deadline", "drain_deadline"):
            if getattr(self, attr) <= 0:
                raise ConfigurationError(f"{attr} must be > 0")
        if self.max_record_bytes < 2:
            raise ConfigurationError("max_record_bytes must be >= 2")


@dataclass
class GatewayStats:
    """Live counters of the edge (all mutated on the asyncio thread).

    Attributes mirror the ``repro_gateway_*`` metrics; reading them
    from other threads is safe (plain int loads).
    """

    connections: int = 0
    ws_connections: int = 0
    open_connections: int = 0
    records_in: int = 0
    acks: int = 0
    sheds: int = 0
    duplicates: int = 0
    deferrals: int = 0
    malformed: int = 0
    disconnects: int = 0
    bytes_in: int = 0
    bytes_out: int = 0
    http_requests: int = 0


class _Handoff:
    """The bounded, thread-safe queue between edge and bridge."""

    def __init__(self, max_depth: int) -> None:
        self.max_depth = max_depth
        self._items: deque[StreamTuple] = deque()
        self._lock = threading.Lock()
        self._ready = threading.Condition(self._lock)
        self.pushed = 0
        self.popped = 0

    def depth(self) -> int:
        return len(self._items)  # atomic under the GIL

    def try_push(self, item: StreamTuple) -> bool:
        with self._ready:
            if len(self._items) >= self.max_depth:
                return False
            self._items.append(item)
            self.pushed += 1
            self._ready.notify()
            return True

    def pop(self, timeout: float) -> StreamTuple | None:
        with self._ready:
            if not self._items:
                self._ready.wait(timeout)
            if not self._items:
                return None
            self.popped += 1
            return self._items.popleft()


class _Connection:
    """Per-connection edge state: reply sequencing and dedup input."""

    __slots__ = ("next_seq",)

    def __init__(self) -> None:
        self.next_seq = 0

    def take_seq(self) -> int:
        seq = self.next_seq
        self.next_seq += 1
        return seq


class IngestGateway:
    """The network edge: asyncio servers plus the cluster bridge.

    Lifecycle: :meth:`start` binds the listeners and launches both
    threads; :meth:`drain` blocks until every admitted record has been
    ingested into the cluster; :meth:`close` stops the servers and the
    bridge (draining first) and leaves the cluster to the caller —
    usable as a context manager.
    """

    def __init__(self, cluster, manager=None,
                 config: GatewayConfig | None = None, *,
                 registry: MetricsRegistry | None = None) -> None:
        self.cluster = cluster
        self.manager = manager
        self.config = config if config is not None else GatewayConfig()
        self.registry = registry if registry is not None else MetricsRegistry()
        self.stats = GatewayStats()
        self.handoff = _Handoff(self.config.handoff_depth)
        #: Client-supplied identities already admitted (dedup set).
        self._admitted_ids: set[tuple[str, int]] = set()
        #: Per-relation counters for records sent without a ``seq``.
        self._assigned_seqs: dict[str, int] = {}
        self._ack_latency: list[float] = []  # exported as a histogram
        self.port: int | None = None
        self.http_port: int | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._loop_thread: threading.Thread | None = None
        self._bridge_thread: threading.Thread | None = None
        self._servers: list[asyncio.AbstractServer] = []
        self._stopping = threading.Event()
        self._started = False
        self._closed = False
        self._bridge_error: BaseException | None = None
        self._loop_error: BaseException | None = None
        self._loop_ready = threading.Event()
        self.registry.register_collector(self._export_metrics)
        if self.manager is not None:
            self.manager.attach_entry_source(self.handoff.depth,
                                             self.config.handoff_depth)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "IngestGateway":
        """Bind the listeners and launch the edge + bridge threads."""
        if self._started:
            raise GatewayError("gateway already started")
        self._started = True
        self._loop_thread = threading.Thread(
            target=self._run_loop, name="gateway-loop", daemon=True)
        self._loop_thread.start()
        self._loop_ready.wait(10.0)
        if self._loop_error is not None:
            raise GatewayError(
                f"gateway failed to start: {self._loop_error!r}")
        if self.port is None:
            raise GatewayError("gateway event loop did not come up")
        self._bridge_thread = threading.Thread(
            target=self._run_bridge, name="gateway-bridge", daemon=True)
        self._bridge_thread.start()
        return self

    def drain(self, timeout: float = 30.0) -> None:
        """Block until every admitted record reached ``cluster.ingest``.

        Raises :class:`GatewayError` if the bridge died or the queue
        does not empty within ``timeout`` seconds.
        """
        deadline = time.monotonic() + timeout
        while self.handoff.depth() > 0:
            self._check_bridge()
            if time.monotonic() > deadline:
                raise GatewayError(
                    f"hand-off queue did not drain within {timeout}s "
                    f"({self.handoff.depth()} records pending)")
            time.sleep(0.005)
        self._check_bridge()

    def close(self) -> None:
        """Stop the servers and the bridge; idempotent.

        Admitted records still in the hand-off queue are ingested
        before the bridge exits (no accepted write is dropped on the
        floor); the cluster itself stays open for the caller to drain.
        """
        if self._closed:
            return
        self._closed = True
        loop = self._loop
        if loop is not None and loop.is_running():
            asyncio.run_coroutine_threadsafe(
                self._shutdown_servers(), loop).result(timeout=10.0)
            loop.call_soon_threadsafe(loop.stop)
        if self._loop_thread is not None:
            self._loop_thread.join(timeout=10.0)
        self._stopping.set()
        if self._bridge_thread is not None:
            self._bridge_thread.join(timeout=30.0)
        self._check_bridge()

    def __enter__(self) -> "IngestGateway":
        return self.start() if not self._started else self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def _check_bridge(self) -> None:
        if self._bridge_error is not None:
            raise GatewayError(
                f"gateway bridge thread died: {self._bridge_error!r}"
            ) from self._bridge_error

    # ------------------------------------------------------------------
    # Bridge thread: the only toucher of the cluster while running
    # ------------------------------------------------------------------
    def _run_bridge(self) -> None:
        try:
            idle_polls = 0
            while True:
                t = self.handoff.pop(timeout=0.02)
                if t is not None:
                    idle_polls = 0
                    self.cluster.ingest(t)
                    continue
                if self._stopping.is_set() and self.handoff.depth() == 0:
                    break
                # Idle gap: keep settlement/supervision advancing and
                # flush short tails so acked records make progress even
                # when no new traffic arrives.
                idle_polls += 1
                if idle_polls >= 2:
                    self.cluster.flush()
                self.cluster.poll(0.0)
            self.cluster.flush()
            self.cluster.poll(0.0)
        except BaseException as exc:  # noqa: BLE001 - surfaced to caller
            self._bridge_error = exc

    # ------------------------------------------------------------------
    # Asyncio thread
    # ------------------------------------------------------------------
    def _run_loop(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            server = loop.run_until_complete(asyncio.start_server(
                self._serve_connection, self.config.host, self.config.port))
            self._servers.append(server)
            self.port = server.sockets[0].getsockname()[1]
            if self.config.http_port is not None:
                http_server = loop.run_until_complete(asyncio.start_server(
                    self._serve_http_only, self.config.host,
                    self.config.http_port))
                self._servers.append(http_server)
                self.http_port = http_server.sockets[0].getsockname()[1]
            else:
                self.http_port = self.port
        except BaseException as exc:  # noqa: BLE001 - surfaced to caller
            self._loop_error = exc
            self._loop_ready.set()
            loop.close()
            return
        self._loop_ready.set()
        try:
            loop.run_forever()
        finally:
            loop.run_until_complete(loop.shutdown_asyncgens())
            loop.close()

    async def _shutdown_servers(self) -> None:
        for server in self._servers:
            server.close()
        for server in self._servers:
            await server.wait_closed()
        # Cancel connections still parked on reads (slow or abandoned
        # clients) so the loop stops with no task left pending.
        current = asyncio.current_task()
        tasks = [t for t in asyncio.all_tasks() if t is not current]
        for task in tasks:
            task.cancel()
        if tasks:
            await asyncio.wait(tasks, timeout=5.0)

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _serve_connection(self, reader: asyncio.StreamReader,
                                writer: asyncio.StreamWriter) -> None:
        self.stats.connections += 1
        self.stats.open_connections += 1
        try:
            await self._dispatch(reader, writer)
        except (ConnectionError, asyncio.IncompleteReadError, OSError):
            pass  # client went away; nothing to clean beyond the finally
        except ProtocolError:
            pass  # unrecoverable framing damage; connection dropped
        except asyncio.CancelledError:
            # Top-level connection task: cancellation only arrives from
            # _shutdown_servers, which awaits this task — finishing
            # normally here keeps the stream-protocol callback quiet.
            pass
        finally:
            self.stats.open_connections -= 1
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                # CancelledError re-fires at this await when shutdown
                # cancelled the connection task: the close is already
                # under way, and completing normally keeps the
                # stream-protocol callback quiet.
                pass

    async def _dispatch(self, reader: asyncio.StreamReader,
                        writer: asyncio.StreamWriter) -> None:
        """Sniff the first bytes and route to line / WS / HTTP."""
        first = await self._read_some(reader, writer, pending=False)
        if not first:
            return
        if self._looks_like_http(first):
            await self._serve_http_connection(first, reader, writer)
            return
        await self._serve_line(first, reader, writer)

    @staticmethod
    def _looks_like_http(first: bytes) -> bool:
        return _HTTP_SNIFF.match(first) is not None

    async def _read_some(self, reader: asyncio.StreamReader,
                         writer: asyncio.StreamWriter, *,
                         pending: bool) -> bytes:
        """One read, bounded by the slowloris guard.

        ``pending`` says a partial frame is outstanding: then a read
        that makes no progress within ``idle_deadline`` disconnects.
        Without pending data the connection may idle forever.
        """
        while True:
            try:
                return await asyncio.wait_for(
                    reader.read(64 * 1024),
                    timeout=self.config.idle_deadline if pending else None)
            except asyncio.TimeoutError:
                self.stats.disconnects += 1
                writer.close()
                return b""

    # -- line protocol -------------------------------------------------
    async def _serve_line(self, first: bytes, reader: asyncio.StreamReader,
                          writer: asyncio.StreamWriter) -> None:
        decoder = LineDecoder(max_line=self.config.max_record_bytes)
        conn = _Connection()
        data = first
        while data:
            self.stats.bytes_in += len(data)
            try:
                lines = decoder.feed(data)
            except ProtocolError as exc:
                # Past resynchronisation: answer once, then hang up.
                self.stats.malformed += 1
                self.stats.disconnects += 1
                await self._reply(writer, encode_reply(
                    conn.take_seq(), STATUS_ERROR, error=str(exc)))
                return
            for line in lines:
                if not line:
                    continue  # bare keep-alive newline
                reply = await self._process_record(conn, line, writer)
                if reply is None:
                    return  # defer deadline hit; already disconnected
                await self._reply(writer, reply)
            data = await self._read_some(
                reader, writer, pending=decoder.pending_bytes > 0)

    # -- WebSocket -----------------------------------------------------
    async def _serve_http_connection(self, first: bytes,
                                     reader: asyncio.StreamReader,
                                     writer: asyncio.StreamWriter) -> None:
        buffer = bytearray(first)
        while b"\r\n\r\n" not in buffer and b"\n\n" not in buffer:
            if len(buffer) > self.config.max_record_bytes:
                raise ProtocolError("oversized request head")
            data = await self._read_some(reader, writer, pending=True)
            if not data:
                return
            buffer.extend(data)
        head, _, rest = bytes(buffer).partition(b"\r\n\r\n")
        if not rest and b"\n\n" in buffer:
            head, _, rest = bytes(buffer).partition(b"\n\n")
        request = parse_http_request(head)
        if is_websocket_upgrade(request):
            writer.write(websocket_handshake_response(request))
            await writer.drain()
            self.stats.ws_connections += 1
            await self._serve_websocket(rest, reader, writer)
            return
        self.stats.http_requests += 1
        response = handle_http_request(request, self)
        writer.write(response)
        self.stats.bytes_out += len(response)
        await writer.drain()

    async def _serve_http_only(self, reader: asyncio.StreamReader,
                               writer: asyncio.StreamWriter) -> None:
        """The dedicated HTTP listener (no ingest, no upgrade)."""
        self.stats.connections += 1
        self.stats.open_connections += 1
        try:
            buffer = bytearray()
            while b"\r\n\r\n" not in buffer and b"\n\n" not in buffer:
                data = await asyncio.wait_for(
                    reader.read(64 * 1024),
                    timeout=self.config.idle_deadline)
                if not data:
                    return
                buffer.extend(data)
                if len(buffer) > self.config.max_record_bytes:
                    return
            head = bytes(buffer).split(b"\r\n\r\n")[0].split(b"\n\n")[0]
            self.stats.http_requests += 1
            response = handle_http_request(parse_http_request(head), self)
            writer.write(response)
            self.stats.bytes_out += len(response)
            await writer.drain()
        except (asyncio.TimeoutError, ProtocolError,
                ConnectionError, OSError, asyncio.CancelledError):
            pass
        finally:
            self.stats.open_connections -= 1
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                # CancelledError re-fires at this await when shutdown
                # cancelled the connection task: the close is already
                # under way, and completing normally keeps the
                # stream-protocol callback quiet.
                pass

    async def _serve_websocket(self, initial: bytes,
                               reader: asyncio.StreamReader,
                               writer: asyncio.StreamWriter) -> None:
        buffer = bytearray(initial)
        assembler = WsMessageAssembler(
            max_payload=self.config.max_record_bytes)
        conn = _Connection()
        while True:
            progress = True
            while progress:
                try:
                    decoded = try_decode_ws_frame(
                        buffer, require_mask=True,
                        max_payload=self.config.max_record_bytes)
                except ProtocolError as exc:
                    self.stats.malformed += 1
                    self.stats.disconnects += 1
                    await self._reply(writer, encode_ws_frame(
                        encode_reply(conn.take_seq(), STATUS_ERROR,
                                     error=str(exc))))
                    await self._reply(writer,
                                      encode_ws_frame(b"", OP_CLOSE))
                    return
                if decoded is None:
                    progress = False
                    continue
                consumed, frame = decoded
                del buffer[:consumed]
                message = assembler.add(frame)
                if message is None:
                    continue
                if message.opcode == OP_CLOSE:
                    await self._reply(
                        writer, encode_ws_frame(message.payload, OP_CLOSE))
                    return
                if message.opcode == OP_PING:
                    await self._reply(
                        writer, encode_ws_frame(message.payload, OP_PONG))
                    continue
                if message.opcode == OP_PONG:
                    continue
                reply = await self._process_record(
                    conn, message.payload, writer)
                if reply is None:
                    return
                await self._reply(writer, encode_ws_frame(reply))
            pending = len(buffer) > 0 or assembler.pending_bytes > 0
            data = await self._read_some(reader, writer, pending=pending)
            if not data:
                return
            self.stats.bytes_in += len(data)
            buffer.extend(data)

    # -- shared record path --------------------------------------------
    async def _process_record(self, conn: _Connection, payload: bytes,
                              writer: asyncio.StreamWriter) -> bytes | None:
        """Decode + admit one record; returns the reply line, or
        ``None`` when the defer deadline disconnected the client."""
        self.stats.records_in += 1
        seq = conn.take_seq()
        try:
            record = decode_record(payload)
        except ProtocolError as exc:
            self.stats.malformed += 1
            return encode_reply(seq, STATUS_ERROR, error=str(exc))
        t = self._materialise(record)
        if record.seq is not None:
            if t.ident in self._admitted_ids:
                # Resubmission after a lost ack: acknowledge without
                # re-admitting; counted as a shed so the ledger's
                # offered == admitted + shed stays exact.
                self.stats.duplicates += 1
                if self.manager is not None:
                    self.manager.record_offered(t)
                    self.manager.record_shed(t, t.ts, reason="duplicate")
                return encode_reply(seq, STATUS_DUPLICATE)
        return await self._admit(conn, seq, t, writer)

    def _materialise(self, record: Record) -> StreamTuple:
        if record.seq is not None:
            return record.to_tuple()
        assigned = self._assigned_seqs.get(record.relation, 0)
        self._assigned_seqs[record.relation] = assigned + 1
        return record.to_tuple(seq=assigned)

    async def _admit(self, conn: _Connection, seq: int, t: StreamTuple,
                     writer: asyncio.StreamWriter) -> bytes | None:
        manager = self.manager
        arrived = time.monotonic()
        if manager is not None:
            manager.record_offered(t)
        attempt = 0
        paused = False
        try:
            while True:
                verdict = ADMIT if manager is None \
                    else manager.admission_decision(t)
                if verdict == SHED:
                    self.stats.sheds += 1
                    if manager is not None:
                        manager.record_shed(t, t.ts)
                    return encode_reply(seq, STATUS_SHED)
                if verdict == ADMIT and self.handoff.try_push(t):
                    waited = time.monotonic() - arrived
                    if manager is not None:
                        # Synthetic "now": event time plus the wall
                        # seconds the record waited at the edge, so
                        # admission-delay accounting measures the wait,
                        # not the wall/event clock skew.
                        manager.record_admitted(t, t.ts + waited)
                    self.stats.acks += 1
                    self._ack_latency.append(waited)
                    self._admitted_ids.add(t.ident)
                    return encode_reply(seq, STATUS_ADMITTED)
                # DEFER (or an admit race against a full queue): stop
                # reading this client and retry shortly.
                attempt += 1
                self.stats.deferrals += 1
                if manager is not None:
                    manager.record_deferral(t, t.ts, attempt)
                if not paused:
                    paused = True
                    try:
                        writer.transport.pause_reading()
                    except (AttributeError, RuntimeError):
                        pass
                if time.monotonic() - arrived > self.config.defer_deadline:
                    self.stats.sheds += 1
                    self.stats.disconnects += 1
                    if manager is not None:
                        manager.record_shed(t, t.ts, reason="defer-timeout")
                    await self._reply(writer, encode_reply(
                        seq, STATUS_SHED, error="defer deadline exceeded"))
                    writer.close()
                    return None
                await asyncio.sleep(self._retry_interval())
        finally:
            if paused:
                try:
                    writer.transport.resume_reading()
                except (AttributeError, RuntimeError):
                    pass

    def _retry_interval(self) -> float:
        if self.manager is not None:
            return self.manager.config.admission_retry
        return self.config.admission_retry

    async def _reply(self, writer: asyncio.StreamWriter,
                     data: bytes) -> None:
        writer.write(data)
        self.stats.bytes_out += len(data)
        try:
            await asyncio.wait_for(writer.drain(),
                                   timeout=self.config.drain_deadline)
        except asyncio.TimeoutError:
            # The client stopped reading its replies: dead weight.
            self.stats.disconnects += 1
            writer.close()

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------
    def _export_metrics(self) -> None:
        """Registry collector: publish the edge counters (pull model)."""
        reg = self.registry
        s = self.stats
        reg.counter("repro_gateway_connections_total",
                    "Client connections accepted.").set_total(s.connections)
        reg.counter("repro_gateway_ws_connections_total",
                    "Connections upgraded to WebSocket."
                    ).set_total(s.ws_connections)
        reg.gauge("repro_gateway_connections_open",
                  "Currently open connections.").set(s.open_connections)
        reg.counter("repro_gateway_records_in_total",
                    "Record frames received.").set_total(s.records_in)
        reg.counter("repro_gateway_acks_total",
                    "Records admitted and acknowledged."
                    ).set_total(s.acks)
        reg.counter("repro_gateway_sheds_total",
                    "Records shed at admission (retryable)."
                    ).set_total(s.sheds)
        reg.counter("repro_gateway_duplicates_total",
                    "Resubmitted records deduplicated on identity."
                    ).set_total(s.duplicates)
        reg.counter("repro_gateway_deferrals_total",
                    "Admission retries under DEFER backpressure."
                    ).set_total(s.deferrals)
        reg.counter("repro_gateway_malformed_total",
                    "Frames rejected by the protocol layer."
                    ).set_total(s.malformed)
        reg.counter("repro_gateway_disconnects_total",
                    "Connections dropped by the gateway (slowloris, "
                    "defer timeouts, drain stalls)."
                    ).set_total(s.disconnects)
        reg.counter("repro_gateway_bytes_in_total",
                    "Payload bytes received.").set_total(s.bytes_in)
        reg.counter("repro_gateway_bytes_out_total",
                    "Reply bytes written.").set_total(s.bytes_out)
        reg.counter("repro_gateway_http_requests_total",
                    "Plain HTTP requests served."
                    ).set_total(s.http_requests)
        reg.gauge("repro_gateway_handoff_depth",
                  "Records waiting in the hand-off queue."
                  ).set(self.handoff.depth())
        hist = reg.histogram(
            "repro_gateway_ack_latency_seconds",
            "Wall seconds from frame receipt to admission ack.")
        pending, self._ack_latency = self._ack_latency, []
        if pending:
            hist.values.extend(pending)
        cluster = self.cluster
        reg.gauge("repro_gateway_cluster_ingested",
                  "Tuples the bridge has ingested into the cluster."
                  ).set(getattr(cluster, "tuples_ingested", 0))
        reg.gauge("repro_gateway_cluster_results",
                  "Join results settled by the cluster so far."
                  ).set(getattr(cluster, "results_count", 0))
        if self.manager is not None:
            self.manager.export_metrics(reg)

    def report(self) -> dict:
        """The edge state as one JSON-ready dict (``/report``)."""
        s = self.stats
        out = {
            "connections": s.connections,
            "ws_connections": s.ws_connections,
            "open_connections": s.open_connections,
            "records_in": s.records_in,
            "acks": s.acks,
            "sheds": s.sheds,
            "duplicates": s.duplicates,
            "deferrals": s.deferrals,
            "malformed": s.malformed,
            "disconnects": s.disconnects,
            "bytes_in": s.bytes_in,
            "bytes_out": s.bytes_out,
            "handoff_depth": self.handoff.depth(),
            "cluster_ingested": getattr(self.cluster,
                                        "tuples_ingested", 0),
            "cluster_results": getattr(self.cluster, "results_count", 0),
        }
        if self.manager is not None:
            acc = self.manager.accounting
            out["overload"] = {
                side: {"offered": acc.sides[side].offered,
                       "admitted": acc.sides[side].admitted,
                       "shed": acc.sides[side].shed}
                for side in sorted(acc.sides)}
        return out
