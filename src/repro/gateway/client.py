"""A synchronous test/bench client for the ingest gateway.

:class:`GatewayClient` speaks both gateway framings — ``mode="tcp"``
for the newline-delimited line protocol, ``mode="ws"`` for the
RFC-6455 WebSocket layer (handshake, masked client frames) — over a
plain blocking socket, one request/reply at a time.

:meth:`GatewayClient.stream` is the **at-least-once driver** the
benchmarks and the chaos soak build on: every tuple is resubmitted
until the gateway acknowledges it (``admitted`` — or ``duplicate``,
which means an earlier ack was lost in a connection reset), with
``shed`` replies retried after a backoff and connection failures
healed by reconnect-and-resend.  Because tuples carry their identity
``(relation, seq)`` to the server, the retry loop composes with the
gateway's dedup into exactly-once admission.

The ``fault_hook`` parameter injects network chaos from the outside:
the soak harness maps its fault plan onto hook actions (``"drop"``,
``"partial"``, ``"malformed"``, ``"slowloris"``) so client-side
misbehaviour is seeded and reproducible — see
:mod:`repro.chaos.soak`.
"""

from __future__ import annotations

import base64
import os
import socket
import time
from dataclasses import dataclass, field

from ..core.tuples import StreamTuple
from ..errors import GatewayError, ProtocolError
from .protocol import (OP_CLOSE, OP_PING, OP_PONG, STATUS_ADMITTED,
                       STATUS_DUPLICATE, STATUS_ERROR, STATUS_SHED,
                       LineDecoder, decode_reply, encode_record,
                       encode_ws_frame, try_decode_ws_frame,
                       websocket_accept)

#: A frame no JSON parser accepts, for malformed-frame injection.
MALFORMED_FRAME = b"this is not a record\n"

#: A record prefix that never completes, for slowloris connections.
SLOWLORIS_PREFIX = b'{"relation": "R", "ts": '


@dataclass
class ClientReport:
    """Outcome of one :meth:`GatewayClient.stream` drive.

    ``acked`` counts fresh admissions, ``duplicates`` acknowledgements
    recovered after a lost ack — their sum equals the records the
    gateway holds exactly once.  ``resets`` counts reconnects (both
    injected and organic), ``sheds_retried`` shed replies absorbed by
    the retry loop, ``malformed_sent``/``partial_writes`` the injected
    damage.
    """

    sent: int = 0
    acked: int = 0
    duplicates: int = 0
    sheds_retried: int = 0
    resets: int = 0
    malformed_sent: int = 0
    partial_writes: int = 0
    errors: int = 0
    replies: list = field(default_factory=list)


class GatewayClient:
    """One blocking connection to the gateway (line or WebSocket)."""

    def __init__(self, host: str, port: int, *, mode: str = "tcp",
                 timeout: float = 10.0) -> None:
        if mode not in ("tcp", "ws"):
            raise GatewayError(f"unknown client mode {mode!r}")
        self.host = host
        self.port = port
        self.mode = mode
        self.timeout = timeout
        self._sock: socket.socket | None = None
        self._lines = LineDecoder()
        self._ws_buffer = bytearray()
        self._ready_lines: list[bytes] = []

    # ------------------------------------------------------------------
    # Connection management
    # ------------------------------------------------------------------
    def connect(self) -> "GatewayClient":
        if self._sock is not None:
            return self
        sock = socket.create_connection((self.host, self.port),
                                        timeout=self.timeout)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._sock = sock
        self._lines = LineDecoder()
        self._ws_buffer = bytearray()
        self._ready_lines = []
        if self.mode == "ws":
            self._handshake()
        return self

    def _handshake(self) -> None:
        key = base64.b64encode(os.urandom(16)).decode("ascii")
        request = (f"GET /ingest HTTP/1.1\r\n"
                   f"Host: {self.host}:{self.port}\r\n"
                   f"Upgrade: websocket\r\n"
                   f"Connection: Upgrade\r\n"
                   f"Sec-WebSocket-Key: {key}\r\n"
                   f"Sec-WebSocket-Version: 13\r\n"
                   f"\r\n").encode("ascii")
        assert self._sock is not None
        self._sock.sendall(request)
        head = bytearray()
        while b"\r\n\r\n" not in head:
            data = self._sock.recv(4096)
            if not data:
                raise GatewayError("connection closed during WS handshake")
            head.extend(data)
        raw, _, leftover = bytes(head).partition(b"\r\n\r\n")
        text = raw.decode("latin-1")
        if " 101 " not in text.split("\r\n")[0]:
            raise GatewayError(f"WS upgrade refused: {text.splitlines()[0]}")
        accept = ""
        for line in text.split("\r\n")[1:]:
            name, _, value = line.partition(":")
            if name.strip().lower() == "sec-websocket-accept":
                accept = value.strip()
        if accept != websocket_accept(key):
            raise GatewayError("WS handshake accept mismatch")
        self._ws_buffer.extend(leftover)

    def close(self) -> None:
        """Orderly close (a WS connection sends its close frame)."""
        if self._sock is None:
            return
        try:
            if self.mode == "ws":
                self._sock.sendall(
                    encode_ws_frame(b"", OP_CLOSE, mask=os.urandom(4)))
        except OSError:
            pass
        self.kill_connection()

    def kill_connection(self) -> None:
        """Abrupt teardown (the ``drop`` chaos action): no close frame,
        no drain — the next send reconnects."""
        sock, self._sock = self._sock, None
        if sock is not None:
            try:
                sock.close()
            except OSError:
                pass

    def __enter__(self) -> "GatewayClient":
        return self.connect()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Frame I/O
    # ------------------------------------------------------------------
    def _encode(self, t: StreamTuple) -> bytes:
        payload = encode_record(t)
        if self.mode == "ws":
            return encode_ws_frame(payload.rstrip(b"\n"),
                                   mask=os.urandom(4))
        return payload

    def send_raw(self, data: bytes) -> None:
        """Ship raw bytes (fault injection uses this directly)."""
        self.connect()
        assert self._sock is not None
        self._sock.sendall(data)

    def send_record(self, t: StreamTuple) -> None:
        self.send_raw(self._encode(t))

    def recv_reply(self) -> dict:
        """Block for the next reply (FIFO per connection)."""
        if self.mode == "ws":
            return self._recv_ws_reply()
        return self._recv_line_reply()

    def _recv_line_reply(self) -> dict:
        assert self._sock is not None
        while not self._ready_lines:
            data = self._sock.recv(64 * 1024)
            if not data:
                raise ConnectionError("gateway closed the connection")
            self._ready_lines.extend(self._lines.feed(data))
        return decode_reply(self._ready_lines.pop(0))

    def _recv_ws_reply(self) -> dict:
        assert self._sock is not None
        while True:
            decoded = try_decode_ws_frame(self._ws_buffer,
                                          require_mask=False)
            if decoded is not None:
                consumed, frame = decoded
                del self._ws_buffer[:consumed]
                if frame.opcode == OP_CLOSE:
                    raise ConnectionError("gateway sent a close frame")
                if frame.opcode == OP_PING:
                    self._sock.sendall(encode_ws_frame(
                        frame.payload, OP_PONG, mask=os.urandom(4)))
                    continue
                if frame.opcode == OP_PONG:
                    continue
                return decode_reply(frame.payload)
            data = self._sock.recv(64 * 1024)
            if not data:
                raise ConnectionError("gateway closed the connection")
            self._ws_buffer.extend(data)

    def submit(self, t: StreamTuple) -> dict:
        """One synchronous send + reply."""
        self.send_record(t)
        return self.recv_reply()

    # ------------------------------------------------------------------
    # The at-least-once driver
    # ------------------------------------------------------------------
    def stream(self, tuples, *, retry_backoff: float = 0.002,
               max_attempts: int = 10_000,
               fault_hook=None, collect_replies: bool = False
               ) -> ClientReport:
        """Drive a tuple sequence to acknowledged admission.

        Every tuple is retried until the gateway answers ``admitted``
        or ``duplicate``; ``shed`` waits ``retry_backoff`` seconds and
        resubmits; connection failures reconnect and resend the
        in-flight tuple.  ``fault_hook(index)`` may return a chaos
        action to inject *before* tuple ``index`` is driven:
        ``"drop"`` (abrupt reconnect), ``"partial"`` (torn frame, then
        abrupt reconnect), ``"malformed"`` (an unparseable frame whose
        error reply is consumed), or ``None``.
        """
        report = ClientReport()
        for index, t in enumerate(tuples):
            action = fault_hook(index) if fault_hook is not None else None
            if action is not None:
                self._inject(action, t, report)
            self._drive_one(t, report, retry_backoff, max_attempts,
                            collect_replies)
        return report

    def _inject(self, action: str, t: StreamTuple,
                report: ClientReport) -> None:
        if action == "drop":
            self.kill_connection()
            report.resets += 1
            return
        if action == "partial":
            # A torn frame the server can never complete, then an
            # abrupt reset: the gateway discards the tail; the record
            # is resent whole on the fresh connection.
            data = self._encode(t)
            try:
                self.send_raw(data[:max(1, len(data) // 2)])
            except OSError:
                pass
            report.partial_writes += 1
            self.kill_connection()
            report.resets += 1
            return
        if action == "malformed":
            frame = MALFORMED_FRAME
            if self.mode == "ws":
                frame = encode_ws_frame(frame.rstrip(b"\n"),
                                        mask=os.urandom(4))
            try:
                self.send_raw(frame)
                reply = self.recv_reply()
                if reply.get("status") != STATUS_ERROR:
                    raise GatewayError(
                        f"malformed frame drew {reply!r}, expected an "
                        f"error reply")
            except (ConnectionError, TimeoutError, OSError, ProtocolError):
                self.kill_connection()
                report.resets += 1
            report.malformed_sent += 1
            return
        raise GatewayError(f"unknown fault action {action!r}")

    def _drive_one(self, t: StreamTuple, report: ClientReport,
                   retry_backoff: float, max_attempts: int,
                   collect_replies: bool) -> None:
        for _ in range(max_attempts):
            try:
                reply = self.submit(t)
            except (ConnectionError, TimeoutError, OSError, ProtocolError):
                self.kill_connection()
                report.resets += 1
                continue
            report.sent += 1
            if collect_replies:
                report.replies.append(reply)
            status = reply.get("status")
            if status == STATUS_ADMITTED:
                report.acked += 1
                return
            if status == STATUS_DUPLICATE:
                report.duplicates += 1
                return
            if status == STATUS_SHED:
                report.sheds_retried += 1
                time.sleep(retry_backoff)
                continue
            # An error reply to a well-formed record is a server-side
            # bug; count it and stop retrying this tuple.
            report.errors += 1
            return
        raise GatewayError(
            f"tuple {t.ident} not admitted after {max_attempts} attempts")


def open_slowloris(host: str, port: int,
                   prefix: bytes = SLOWLORIS_PREFIX) -> socket.socket:
    """Open a connection that sends a frame prefix and then stalls.

    The caller holds the socket; the gateway's ``idle_deadline`` guard
    should eventually disconnect it (``recv`` returns ``b""``).
    """
    sock = socket.create_connection((host, port), timeout=30.0)
    sock.sendall(prefix)
    return sock


__all__ = ["ClientReport", "GatewayClient", "open_slowloris",
           "MALFORMED_FRAME", "SLOWLORIS_PREFIX"]
