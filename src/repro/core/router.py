"""The router service (thesis §3.1.1, §3.2).

Routers ingest tuples from the system entry queue (where a pool of
routers compete, queuing-model style), stamp each tuple with the
monotonically increasing counter of the ordering protocol, split it
into the **store stream** (to its own side, per the routing strategy)
and the **join stream** (to the opposite side), and periodically emit
punctuations to every joiner.

Routers are deliberately stateless with respect to stream content —
their only state is the counter, round-robin cursors inside the shared
routing strategy, and input-rate statistics — which is what makes the
router tier trivially scalable behind the competing-consumer queue.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from ..broker.channels import ChannelLayer
from ..broker.message import Delivery
from ..metrics.counters import NetworkStats, ThroughputWindow
from ..obs.trace import (NOOP_TRACER, SPAN_ENQUEUE, SPAN_ROUTE, SPAN_THROTTLE,
                         NoopTracer)
from .ordering import KIND_JOIN, KIND_PUNCTUATION, KIND_STORE, Envelope
from .routing import RoutingStrategy
from .tuples import StreamTuple

if TYPE_CHECKING:
    from ..obs.registry import MetricsRegistry
    from ..overload.credits import CreditController
    from .recovery import ReplayLog


def joiner_inbox(unit_id: str) -> str:
    """Destination name of a joiner unit's inbox."""
    return f"joiner.{unit_id}.inbox"


@dataclass
class RouterStats:
    """Per-router ingestion/emission counters."""

    tuples_ingested: int = 0
    store_messages: int = 0
    join_messages: int = 0
    punctuations: int = 0


class Router:
    """One router service instance."""

    def __init__(self, router_id: str, strategy: RoutingStrategy,
                 channels: ChannelLayer, network_stats: NetworkStats,
                 *, rate_horizon: float = 10.0,
                 replay_log: "ReplayLog | None" = None,
                 tracer: NoopTracer = NOOP_TRACER) -> None:
        self.router_id = router_id
        #: Causal tracer (no-op by default; see :mod:`repro.obs.trace`).
        self.tracer = tracer
        self.strategy = strategy
        self.channels = channels
        self.network_stats = network_stats
        self.stats = RouterStats()
        self.rate = ThroughputWindow(horizon=rate_horizon)
        self._next_counter = 0
        #: Window-replay log fed with every routed store envelope; the
        #: engine uses it to rebuild crashed joiners (exactly-once
        #: recovery) when replay recovery is enabled.
        self.replay_log = replay_log
        #: Manual-ack hook (see :attr:`Joiner.acker`): acknowledges the
        #: input-tuple delivery once the tuple is stamped and dispatched.
        self.acker: Callable[[int], None] | None = None
        #: Delivery tags already routed: a duplicate copy injected by
        #: the network shares its original's tag and must not be
        #: stamped with a fresh counter and routed a second time.
        self._routed_tags: set[int] = set()
        self.duplicates_dropped = 0
        #: Credit pool (set by the overload manager); when any joiner's
        #: credits run dry the router *parks* incoming deliveries
        #: instead of routing them.
        self.flow: "CreditController | None" = None
        #: Simulation clock used to timestamp parked-work drains.
        self.clock: Callable[[], float] | None = None
        #: Bound on the park buffer (drop-oldest policies only); the
        #: oldest parked delivery is evicted — acked and reported via
        #: :attr:`on_park_evict` — when a newer one overflows it.
        self.park_limit: int | None = None
        self.on_park_evict: Callable[[StreamTuple, float], None] | None = None
        #: Set when this router leaves the pool (crash or scale-in) so
        #: a pending credit wakeup cannot route through a dead router.
        self.retired = False
        self._parked: deque[Delivery] = deque()
        self.parks = 0
        self.park_evictions = 0

    @property
    def next_counter(self) -> int:
        """The counter the next ingested tuple will be stamped with."""
        return self._next_counter

    def advance_counter_to(self, value: int) -> None:
        """Fast-forward the counter (monotone only).

        Used when a router joins an existing pool: the global tuple
        order is ``(counter, router_id)``, so a newcomer starting at 0
        would insert its tuples *before* everything the old routers are
        currently sending — far out of timestamp order — which breaks
        the bounded-skew assumption Theorem-1 expiry slack relies on.
        Aligning the new counter with the pool keeps the global order
        approximately time-aligned.
        """
        if value > self._next_counter:
            self._next_counter = value

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------
    def on_delivery(self, delivery: Delivery) -> None:
        """Broker callback: an input tuple reached this router.

        Under credit flow control a delivery is *parked* — buffered
        unrouted and, crucially, unacked (so a router crash requeues
        it, nothing is lost) — whenever the credit pool is exhausted
        or older parked work is still waiting (FIFO: a fresh arrival
        must not overtake a parked one).
        """
        if delivery.tag >= 0:
            if delivery.tag in self._routed_tags:
                self.duplicates_dropped += 1
                return
            self._routed_tags.add(delivery.tag)
        if self.flow is not None and (self._parked or self.flow.exhausted()):
            self._park(delivery)
            return
        self.route_tuple(delivery.message.payload, now=delivery.time)
        if delivery.tag >= 0 and self.acker is not None:
            self.acker(delivery.tag)

    # ------------------------------------------------------------------
    # Backpressure parking
    # ------------------------------------------------------------------
    def _park(self, delivery: Delivery) -> None:
        self._parked.append(delivery)
        self.parks += 1
        if self.tracer.enabled:
            payload = delivery.message.payload
            self.tracer.record(SPAN_THROTTLE, delivery.time, self.router_id,
                               tuple_id=getattr(payload, "ident", None),
                               detail="park")
        if len(self._parked) == 1 and self.flow is not None:
            self.flow.add_waiter(self._drain_parked)
        while (self.park_limit is not None
               and len(self._parked) > self.park_limit):
            victim = self._parked.popleft()
            self.park_evictions += 1
            if victim.tag >= 0 and self.acker is not None:
                self.acker(victim.tag)
            if self.on_park_evict is not None:
                self.on_park_evict(victim.message.payload, delivery.time)

    def _drain_parked(self) -> None:
        """Credit-wakeup callback: route parked work while credits last."""
        if self.retired or self.flow is None:
            return
        while self._parked and not self.flow.exhausted():
            delivery = self._parked.popleft()
            now = self.clock() if self.clock is not None else delivery.time
            self.route_tuple(delivery.message.payload, now=now)
            if delivery.tag >= 0 and self.acker is not None:
                self.acker(delivery.tag)
        if self._parked:
            self.flow.add_waiter(self._drain_parked)

    def release_parked(self) -> int:
        """Route everything parked, ignoring credits.

        Called before an orderly scale-in removal so the router's final
        punctuation (a promise that every stamped counter was sent) is
        truthful.  Returns the number of released deliveries.
        """
        released = 0
        while self._parked:
            delivery = self._parked.popleft()
            now = self.clock() if self.clock is not None else delivery.time
            self.route_tuple(delivery.message.payload, now=now)
            if delivery.tag >= 0 and self.acker is not None:
                self.acker(delivery.tag)
            released += 1
        return released

    @property
    def parked_count(self) -> int:
        return len(self._parked)

    def route_tuple(self, t: StreamTuple, now: float) -> int:
        """Stamp and dispatch one tuple; returns messages sent."""
        counter = self._next_counter
        self._next_counter += 1
        self.stats.tuples_ingested += 1
        self.rate.record(now)
        if self.tracer.enabled:
            self.tracer.record(SPAN_ROUTE, now, self.router_id,
                               tuple_id=t.ident, ref_time=t.ts,
                               detail=f"counter={counter}")

        sent = 0
        store_env = Envelope(kind=KIND_STORE, router_id=self.router_id,
                             counter=counter, tuple=t)
        for unit_id in self.strategy.store_targets(t, now):
            self.channels.send(joiner_inbox(unit_id), store_env,
                               sender=self.router_id)
            if self.flow is not None:
                self.flow.acquire(unit_id)
            self.network_stats.record("store", store_env.size_bytes())
            self.stats.store_messages += 1
            sent += 1
            if self.replay_log is not None:
                self.replay_log.record(unit_id, store_env)
            if self.tracer.enabled:
                self.tracer.record(SPAN_ENQUEUE, now, self.router_id,
                                   tuple_id=t.ident,
                                   detail=f"store:{unit_id}")

        join_env = Envelope(kind=KIND_JOIN, router_id=self.router_id,
                            counter=counter, tuple=t)
        for unit_id in self.strategy.join_targets(t, now):
            self.channels.send(joiner_inbox(unit_id), join_env,
                               sender=self.router_id)
            if self.flow is not None:
                self.flow.acquire(unit_id)
            self.network_stats.record("join", join_env.size_bytes())
            self.stats.join_messages += 1
            sent += 1
            if self.tracer.enabled:
                self.tracer.record(SPAN_ENQUEUE, now, self.router_id,
                                   tuple_id=t.ident,
                                   detail=f"join:{unit_id}")
        return sent

    # ------------------------------------------------------------------
    # Punctuations (ordering protocol, §3.3)
    # ------------------------------------------------------------------
    def emit_punctuation(self) -> int:
        """Broadcast the current counter to every joiner on both sides.

        The punctuation promises that all tuples with counters below
        :attr:`next_counter` have already been sent on every channel.
        Returns the number of punctuation messages sent.
        """
        env = Envelope(kind=KIND_PUNCTUATION, router_id=self.router_id,
                       counter=self._next_counter)
        sent = 0
        for unit_id in self.strategy.all_unit_ids():
            self.channels.send(joiner_inbox(unit_id), env,
                               sender=self.router_id)
            self.network_stats.record("punctuation", env.size_bytes())
            sent += 1
        self.stats.punctuations += 1
        return sent

    def input_rate(self, now: float) -> float:
        """Recent events/second (the router's §3.1.1 statistics duty)."""
        return self.rate.rate(now)

    # ------------------------------------------------------------------
    # Metrics export
    # ------------------------------------------------------------------
    def export_metrics(self, registry: "MetricsRegistry") -> None:
        """Publish this router's counters into a metrics registry."""
        labels = {"router": self.router_id}
        registry.counter("repro_router_tuples_ingested_total",
                         "Input tuples stamped and routed.",
                         labels).set_total(self.stats.tuples_ingested)
        registry.counter("repro_router_store_messages_total",
                         "Store-stream envelopes sent.",
                         labels).set_total(self.stats.store_messages)
        registry.counter("repro_router_join_messages_total",
                         "Join-stream envelopes sent.",
                         labels).set_total(self.stats.join_messages)
        registry.counter("repro_router_punctuations_total",
                         "Punctuation broadcasts emitted.",
                         labels).set_total(self.stats.punctuations)
        registry.counter("repro_router_duplicates_dropped_total",
                         "Duplicate entry deliveries dropped.",
                         labels).set_total(self.duplicates_dropped)
        registry.counter("repro_router_parks_total",
                         "Deliveries parked on exhausted credits.",
                         labels).set_total(self.parks)
        registry.counter("repro_router_park_evictions_total",
                         "Parked deliveries evicted (drop-oldest).",
                         labels).set_total(self.park_evictions)
