"""The router service (thesis §3.1.1, §3.2).

Routers ingest tuples from the system entry queue (where a pool of
routers compete, queuing-model style), stamp each tuple with the
monotonically increasing counter of the ordering protocol, split it
into the **store stream** (to its own side, per the routing strategy)
and the **join stream** (to the opposite side), and periodically emit
punctuations to every joiner.

Routers are deliberately stateless with respect to stream content —
their only state is the counter, round-robin cursors inside the shared
routing strategy, and input-rate statistics — which is what makes the
router tier trivially scalable behind the competing-consumer queue.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from ..broker.channels import ChannelLayer
from ..broker.message import Delivery
from ..metrics.counters import NetworkStats, ThroughputWindow
from ..obs.trace import (NOOP_TRACER, SPAN_ENQUEUE, SPAN_ROUTE, SPAN_THROTTLE,
                         NoopTracer)
from .batching import BatchingConfig, EnvelopeBatch
from .ordering import KIND_JOIN, KIND_PUNCTUATION, KIND_STORE, Envelope
from .routing import RoutingStrategy
from .tuples import StreamTuple

if TYPE_CHECKING:
    from ..obs.registry import MetricsRegistry
    from ..overload.credits import CreditController
    from .recovery import ReplayLog


def joiner_inbox(unit_id: str) -> str:
    """Destination name of a joiner unit's inbox."""
    return f"joiner.{unit_id}.inbox"


@dataclass
class RouterStats:
    """Per-router ingestion/emission counters."""

    tuples_ingested: int = 0
    store_messages: int = 0
    join_messages: int = 0
    punctuations: int = 0
    #: Transport batching counters (all zero when batching is off).
    batches_sent: int = 0
    batched_envelopes: int = 0
    batch_flushes_size: int = 0
    batch_flushes_linger: int = 0
    batch_flushes_punctuation: int = 0
    batch_flushes_drain: int = 0


class Router:
    """One router service instance."""

    def __init__(self, router_id: str, strategy: RoutingStrategy,
                 channels: ChannelLayer, network_stats: NetworkStats,
                 *, rate_horizon: float = 10.0,
                 replay_log: "ReplayLog | None" = None,
                 tracer: NoopTracer = NOOP_TRACER,
                 batching: BatchingConfig | None = None) -> None:
        self.router_id = router_id
        #: Causal tracer (no-op by default; see :mod:`repro.obs.trace`).
        self.tracer = tracer
        self.strategy = strategy
        self.channels = channels
        self.network_stats = network_stats
        self.stats = RouterStats()
        self.rate = ThroughputWindow(horizon=rate_horizon)
        self._next_counter = 0
        #: Window-replay log fed with every routed store envelope; the
        #: engine uses it to rebuild crashed joiners (exactly-once
        #: recovery) when replay recovery is enabled.
        self.replay_log = replay_log
        #: Manual-ack hook (see :attr:`Joiner.acker`): acknowledges the
        #: input-tuple delivery once the tuple is stamped and dispatched.
        self.acker: Callable[[int], None] | None = None
        #: Delivery tags already routed: a duplicate copy injected by
        #: the network shares its original's tag and must not be
        #: stamped with a fresh counter and routed a second time.
        self._routed_tags: set[int] = set()
        self.duplicates_dropped = 0
        #: Credit pool (set by the overload manager); when any joiner's
        #: credits run dry the router *parks* incoming deliveries
        #: instead of routing them.
        self.flow: "CreditController | None" = None
        #: Simulation clock used to timestamp parked-work drains.
        self.clock: Callable[[], float] | None = None
        #: Bound on the park buffer (drop-oldest policies only); the
        #: oldest parked delivery is evicted — acked and reported via
        #: :attr:`on_park_evict` — when a newer one overflows it.
        self.park_limit: int | None = None
        self.on_park_evict: Callable[[StreamTuple, float], None] | None = None
        #: Set when this router leaves the pool (crash or scale-in) so
        #: a pending credit wakeup cannot route through a dead router.
        self.retired = False
        self._parked: deque[Delivery] = deque()
        self.parks = 0
        self.park_evictions = 0
        #: Transport micro-batching (see :mod:`repro.core.batching`).
        #: When enabled, routed envelopes buffer per destination and
        #: ship as one :class:`EnvelopeBatch`; input-tuple acks and
        #: replay-log records are deferred until the buffer is flushed
        #: so a router crash loses nothing (the unacked inputs requeue).
        self.batching = batching if batching is not None else BatchingConfig()
        #: Linger-timer hook, set by the runtime: ``(delay, action) ->``
        #: a cancellable event.  ``None`` disables time-based flushes.
        self.batch_scheduler: Callable[[float, Callable[[], None]], object] \
            | None = None
        self._pending_batches: dict[str, list[Envelope]] = {}
        self._pending_tuples = 0
        self._pending_acks: list[int] = []
        self._pending_replays: list[tuple[str, Envelope]] = []
        self._linger_event: object | None = None

    @property
    def next_counter(self) -> int:
        """The counter the next ingested tuple will be stamped with."""
        return self._next_counter

    def advance_counter_to(self, value: int) -> None:
        """Fast-forward the counter (monotone only).

        Used when a router joins an existing pool: the global tuple
        order is ``(counter, router_id)``, so a newcomer starting at 0
        would insert its tuples *before* everything the old routers are
        currently sending — far out of timestamp order — which breaks
        the bounded-skew assumption Theorem-1 expiry slack relies on.
        Aligning the new counter with the pool keeps the global order
        approximately time-aligned.
        """
        if value > self._next_counter:
            self._next_counter = value

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------
    def on_delivery(self, delivery: Delivery) -> None:
        """Broker callback: an input tuple reached this router.

        Under credit flow control a delivery is *parked* — buffered
        unrouted and, crucially, unacked (so a router crash requeues
        it, nothing is lost) — whenever the credit pool is exhausted
        or older parked work is still waiting (FIFO: a fresh arrival
        must not overtake a parked one).
        """
        if delivery.tag >= 0:
            if delivery.tag in self._routed_tags:
                self.duplicates_dropped += 1
                return
            self._routed_tags.add(delivery.tag)
        if self.flow is not None and (self._parked or self.flow.exhausted()):
            self._park(delivery)
            return
        self.route_tuple(delivery.message.payload, now=delivery.time)
        self._settle_input(delivery.tag, delivery.time)

    # ------------------------------------------------------------------
    # Backpressure parking
    # ------------------------------------------------------------------
    def _park(self, delivery: Delivery) -> None:
        self._parked.append(delivery)
        self.parks += 1
        if self.tracer.enabled:
            payload = delivery.message.payload
            self.tracer.record(SPAN_THROTTLE, delivery.time, self.router_id,
                               tuple_id=getattr(payload, "ident", None),
                               detail="park")
        if len(self._parked) == 1 and self.flow is not None:
            self.flow.add_waiter(self._drain_parked)
        while (self.park_limit is not None
               and len(self._parked) > self.park_limit):
            victim = self._parked.popleft()
            self.park_evictions += 1
            if victim.tag >= 0 and self.acker is not None:
                self.acker(victim.tag)
            if self.on_park_evict is not None:
                self.on_park_evict(victim.message.payload, delivery.time)

    def _drain_parked(self) -> None:
        """Credit-wakeup callback: route parked work while credits last."""
        if self.retired or self.flow is None:
            return
        while self._parked and not self.flow.exhausted():
            delivery = self._parked.popleft()
            now = self.clock() if self.clock is not None else delivery.time
            self.route_tuple(delivery.message.payload, now=now)
            self._settle_input(delivery.tag, now)
        if self._parked:
            self.flow.add_waiter(self._drain_parked)

    def release_parked(self) -> int:
        """Route everything parked, ignoring credits.

        Called before an orderly scale-in removal so the router's final
        punctuation (a promise that every stamped counter was sent) is
        truthful.  Returns the number of released deliveries.
        """
        released = 0
        while self._parked:
            delivery = self._parked.popleft()
            now = self.clock() if self.clock is not None else delivery.time
            self.route_tuple(delivery.message.payload, now=now)
            self._settle_input(delivery.tag, now)
            released += 1
        return released

    def _settle_input(self, tag: int, now: float) -> None:
        """Acknowledge a routed input delivery — immediately when every
        envelope already shipped, deferred to the batch flush otherwise
        (so a crash before the flush requeues the input, losing nothing).
        """
        if not self.batching.enabled:
            if tag >= 0 and self.acker is not None:
                self.acker(tag)
            return
        if tag >= 0:
            self._pending_acks.append(tag)
        self._maybe_flush(now)

    @property
    def parked_count(self) -> int:
        return len(self._parked)

    def route_tuple(self, t: StreamTuple, now: float) -> int:
        """Stamp and dispatch one tuple; returns messages sent."""
        counter = self._next_counter
        self._next_counter += 1
        self.stats.tuples_ingested += 1
        self.rate.record(now)
        if self.tracer.enabled:
            self.tracer.record(SPAN_ROUTE, now, self.router_id,
                               tuple_id=t.ident, ref_time=t.ts,
                               detail=f"counter={counter}")

        batching = self.batching.enabled
        sent = 0
        store_env = Envelope(kind=KIND_STORE, router_id=self.router_id,
                             counter=counter, tuple=t)
        for unit_id in self.strategy.store_targets(t, now):
            inbox = joiner_inbox(unit_id)
            if batching:
                self._buffer(inbox, store_env)
                self._pending_replays.append((unit_id, store_env))
            else:
                self.channels.send(inbox, store_env, sender=self.router_id)
                if self.replay_log is not None:
                    self.replay_log.record(unit_id, store_env)
            if self.flow is not None:
                self.flow.acquire(unit_id)
            self.network_stats.record("store", store_env.size_bytes())
            self.stats.store_messages += 1
            sent += 1
            if self.tracer.enabled:
                self.tracer.record(SPAN_ENQUEUE, now, self.router_id,
                                   tuple_id=t.ident,
                                   detail=f"store:{unit_id}")

        join_env = Envelope(kind=KIND_JOIN, router_id=self.router_id,
                            counter=counter, tuple=t)
        for unit_id in self.strategy.join_targets(t, now):
            inbox = joiner_inbox(unit_id)
            if batching:
                self._buffer(inbox, join_env)
            else:
                self.channels.send(inbox, join_env, sender=self.router_id)
            if self.flow is not None:
                self.flow.acquire(unit_id)
            self.network_stats.record("join", join_env.size_bytes())
            self.stats.join_messages += 1
            sent += 1
            if self.tracer.enabled:
                self.tracer.record(SPAN_ENQUEUE, now, self.router_id,
                                   tuple_id=t.ident,
                                   detail=f"join:{unit_id}")
        if batching:
            self._pending_tuples += 1
        return sent

    # ------------------------------------------------------------------
    # Transport micro-batching
    # ------------------------------------------------------------------
    def _buffer(self, inbox: str, envelope: Envelope) -> None:
        buf = self._pending_batches.get(inbox)
        if buf is None:
            self._pending_batches[inbox] = [envelope]
        else:
            buf.append(envelope)

    def _maybe_flush(self, now: float) -> None:
        if self._pending_tuples >= self.batching.batch_size:
            self.flush_batches(cause="size")
        elif (self._pending_tuples and self._linger_event is None
                and self.batching.batch_linger > 0
                and self.batch_scheduler is not None):
            self._linger_event = self.batch_scheduler(
                self.batching.batch_linger, self._on_linger)

    def _on_linger(self) -> None:
        self._linger_event = None
        if not self.retired:
            self.flush_batches(cause="linger")

    def flush_batches(self, cause: str = "drain") -> int:
        """Ship every buffered envelope, then fire the deferred acks.

        Acks come strictly *after* the sends: an input tuple counts as
        processed only once all its envelopes are on the wire, so a
        crash mid-flush redelivers rather than loses it.  Returns the
        number of transport messages sent.
        """
        event = self._linger_event
        if event is not None:
            self._linger_event = None
            cancel = getattr(event, "cancel", None)
            if callable(cancel):
                cancel()
        pending = self._pending_batches
        sent = 0
        if pending:
            stats = self.stats
            for inbox, envelopes in pending.items():
                if len(envelopes) == 1:
                    payload: Envelope | EnvelopeBatch = envelopes[0]
                else:
                    payload = EnvelopeBatch(tuple(envelopes))
                    stats.batches_sent += 1
                    stats.batched_envelopes += len(envelopes)
                self.channels.send(inbox, payload, sender=self.router_id)
                sent += 1
            pending.clear()
            setattr(stats, f"batch_flushes_{cause}",
                    getattr(stats, f"batch_flushes_{cause}") + 1)
        if self._pending_replays:
            if self.replay_log is not None:
                for unit_id, envelope in self._pending_replays:
                    self.replay_log.record(unit_id, envelope)
            self._pending_replays.clear()
        self._pending_tuples = 0
        if self._pending_acks:
            acks = self._pending_acks
            self._pending_acks = []
            if self.acker is not None:
                for tag in acks:
                    self.acker(tag)
        return sent

    @property
    def pending_batched_tuples(self) -> int:
        """Tuples routed but still sitting in the batch buffers."""
        return self._pending_tuples

    # ------------------------------------------------------------------
    # Punctuations (ordering protocol, §3.3)
    # ------------------------------------------------------------------
    def emit_punctuation(self) -> int:
        """Broadcast the current counter to every joiner on both sides.

        The punctuation promises that all tuples with counters below
        :attr:`next_counter` have already been sent on every channel.
        Buffered batches are therefore flushed first — a punctuation
        overtaking a buffered envelope would be a lie the ordering
        protocol turns into a counter regression.  Returns the number
        of punctuation messages sent.
        """
        if self._pending_tuples or self._pending_acks:
            self.flush_batches(cause="punctuation")
        env = Envelope(kind=KIND_PUNCTUATION, router_id=self.router_id,
                       counter=self._next_counter)
        sent = 0
        for unit_id in self.strategy.all_unit_ids():
            self.channels.send(joiner_inbox(unit_id), env,
                               sender=self.router_id)
            self.network_stats.record("punctuation", env.size_bytes())
            sent += 1
        self.stats.punctuations += 1
        return sent

    def input_rate(self, now: float) -> float:
        """Recent events/second (the router's §3.1.1 statistics duty)."""
        return self.rate.rate(now)

    # ------------------------------------------------------------------
    # Metrics export
    # ------------------------------------------------------------------
    def export_metrics(self, registry: "MetricsRegistry") -> None:
        """Publish this router's counters into a metrics registry."""
        labels = {"router": self.router_id}
        registry.counter("repro_router_tuples_ingested_total",
                         "Input tuples stamped and routed.",
                         labels).set_total(self.stats.tuples_ingested)
        registry.counter("repro_router_store_messages_total",
                         "Store-stream envelopes sent.",
                         labels).set_total(self.stats.store_messages)
        registry.counter("repro_router_join_messages_total",
                         "Join-stream envelopes sent.",
                         labels).set_total(self.stats.join_messages)
        registry.counter("repro_router_punctuations_total",
                         "Punctuation broadcasts emitted.",
                         labels).set_total(self.stats.punctuations)
        registry.counter("repro_router_duplicates_dropped_total",
                         "Duplicate entry deliveries dropped.",
                         labels).set_total(self.duplicates_dropped)
        registry.counter("repro_router_parks_total",
                         "Deliveries parked on exhausted credits.",
                         labels).set_total(self.parks)
        registry.counter("repro_router_park_evictions_total",
                         "Parked deliveries evicted (drop-oldest).",
                         labels).set_total(self.park_evictions)
        if self.batching.enabled:
            # The repro_batch_* family exists only when batching is on,
            # keeping unbatched metric snapshots byte-identical to seed.
            registry.counter("repro_batch_messages_total",
                             "EnvelopeBatch transport messages sent.",
                             labels).set_total(self.stats.batches_sent)
            registry.counter("repro_batch_envelopes_total",
                             "Data envelopes shipped inside batches.",
                             labels).set_total(self.stats.batched_envelopes)
            for cause in ("size", "linger", "punctuation", "drain"):
                registry.counter(
                    f"repro_batch_flushes_{cause}_total",
                    f"Batch buffer flushes triggered by {cause}.",
                    labels).set_total(
                        getattr(self.stats, f"batch_flushes_{cause}"))
