"""Window-replay recovery for crashed joiners.

The join-biclique model keeps only a sliding window of each relation in
joiner memory, which bounds the blast radius of a pod crash to 1/n of
one window (thesis §3.1) — but those tuples are still *lost*.  This
module closes the gap: routers append every routed **store** envelope to
a :class:`ReplayLog` that retains (at least) the last window-extent per
joiner unit.  When a unit's pod crashes, the replacement replays the
retained envelopes in **store-only** mode — stores are rebuilt, no join
probes are re-run — so no result is ever produced twice, and the blast
radius drops to zero.

The log retains by *event time* against a high-water mark, pruning only
tuples strictly older than the retention horizon; with retention equal
to the window extent (plus the engine's expiry slack) every tuple that
could still participate in a future join is replayable.  This mirrors
what a replicated changelog topic (Kafka compacted topic, RabbitMQ
stream) provides in a production deployment, priced here at zero
network cost because recovery traffic is out-of-band of the experiment
metrics.
"""

from __future__ import annotations

import math
from collections import deque

from ..errors import SimulationError
from .ordering import KIND_STORE, Envelope


class ReplayBuffer:
    """Window-extent retention of one unit's routed store envelopes."""

    def __init__(self, retention: float | None = None) -> None:
        """``retention`` in event-time seconds; ``None`` keeps forever."""
        if retention is not None and retention < 0:
            raise SimulationError(
                f"retention must be >= 0 or None, got {retention!r}")
        self.retention = math.inf if retention is None else retention
        self._entries: deque[Envelope] = deque()
        self._high_water = -math.inf
        self.recorded = 0
        self.pruned = 0

    def __len__(self) -> int:
        return len(self._entries)

    def record(self, envelope: Envelope) -> None:
        if envelope.kind != KIND_STORE or envelope.tuple is None:
            raise SimulationError(
                f"replay log only records store envelopes, got {envelope.kind!r}")
        self._entries.append(envelope)
        self.recorded += 1
        if envelope.tuple.ts > self._high_water:
            self._high_water = envelope.tuple.ts
        self._prune()

    def _prune(self) -> None:
        # Strictly-older-than-horizon: a tuple exactly at the horizon is
        # still within the window and must stay replayable.
        while (self._entries and
               self._high_water - self._entries[0].tuple.ts
               > self.retention):
            self._entries.popleft()
            self.pruned += 1

    def snapshot(self) -> list[Envelope]:
        """Retained envelopes in arrival (hence global-order) order."""
        return list(self._entries)


class ReplayLog:
    """Per-joiner-unit replay buffers, fed by the routers."""

    def __init__(self, retention: float | None = None) -> None:
        self.retention = retention
        self._buffers: dict[str, ReplayBuffer] = {}

    def buffer(self, unit_id: str) -> ReplayBuffer:
        buf = self._buffers.get(unit_id)
        if buf is None:
            buf = ReplayBuffer(self.retention)
            self._buffers[unit_id] = buf
        return buf

    def record(self, unit_id: str, envelope: Envelope) -> None:
        self.buffer(unit_id).record(envelope)

    def snapshot(self, unit_id: str) -> list[Envelope]:
        buf = self._buffers.get(unit_id)
        return buf.snapshot() if buf is not None else []

    def forget(self, unit_id: str) -> None:
        """Drop a unit's buffer (scale-in: the unit is gone for good)."""
        self._buffers.pop(unit_id, None)

    @property
    def unit_ids(self) -> list[str]:
        return sorted(self._buffers)
