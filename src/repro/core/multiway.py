"""Multi-way stream joins as a cascade of join-bicliques.

The thesis discusses multi-way joins only for the join-matrix model
(where they require a hypercube, §2.4.1); the natural join-biclique
generalisation — and the one this module implements — is a **cascade**:
the output stream of one biclique becomes an input relation of the
next, giving ``(R ⋈ S) ⋈ T`` with per-stage predicates and windows.

Semantics (documented and enforced by tests against a brute-force
reference): a triple ``(r, s, t)`` is produced iff

- ``P1(r, s)`` holds and ``|r.ts - s.ts| <= W1``, and
- ``P2(rs, t)`` holds and ``|rs.ts - t.ts| <= W2``, where ``rs`` is the
  composite tuple carrying both inputs' attributes (prefixed ``R.`` /
  ``S.``) and the stage-1 output timestamp (``max`` policy by default).

The cascade drives both stages in lockstep over the time-merged arrival
sequence; composites enter stage 2 the instant stage 1 emits them.  A
composite's timestamp can lag the arrival clock by up to ``W1`` (it is
the *older* pair member under the ``max`` policy no later than the
newer one), so stage 2 automatically runs with ``expiry_slack >= W1``
to keep Theorem-1 discarding safe — the same bounded-skew argument as
for multi-router deployments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from ..errors import ConfigurationError
from .biclique import BicliqueConfig, BicliqueEngine
from .predicates import JoinPredicate
from .streams import merge_by_time
from .tuples import JoinResult, StreamTuple
from .windows import FullHistoryWindow

#: Reserved composite attribute holding the input identities.
IDENTS_KEY = "_idents"


def composite_values(result: JoinResult) -> dict:
    """Merge an (r, s) result into one prefixed attribute mapping."""
    values = {f"R.{name}": value for name, value in result.r.values.items()}
    values.update(
        {f"S.{name}": value for name, value in result.s.values.items()})
    values[IDENTS_KEY] = (result.r.ident, result.s.ident)
    return values


@dataclass(frozen=True)
class CascadeResult:
    """One produced triple ``(r, s, t)``."""

    r_ident: tuple[str, int]
    s_ident: tuple[str, int]
    t_ident: tuple[str, int]
    ts: float

    @property
    def key(self) -> tuple:
        return (self.r_ident, self.s_ident, self.t_ident)


@dataclass
class CascadeReport:
    """Statistics of one cascade run."""

    tuples_ingested: int = 0
    intermediate_results: int = 0
    results: int = 0
    stage1_messages: int = 0
    stage2_messages: int = 0


class CascadeJoin:
    """A three-way windowed stream join ``(R ⋈ S) ⋈ T``.

    Args:
        first_config / first_predicate: the R ⋈ S stage (its window is
            ``W1``).
        second_config / second_predicate: the (RS) ⋈ T stage.  The
            predicate's R-side attributes refer to the *composite*
            tuple and must use the ``R.``/``S.`` prefixes, e.g.
            ``EquiJoinPredicate("S.x", "y")`` joins the original S's
            ``x`` with T's ``y``.
    """

    def __init__(self, first_config: BicliqueConfig,
                 first_predicate: JoinPredicate,
                 second_config: BicliqueConfig,
                 second_predicate: JoinPredicate) -> None:
        self.report = CascadeReport()
        self._composite_seq = 0
        self._pending_composites: list[StreamTuple] = []

        w1 = first_config.window
        if not isinstance(w1, FullHistoryWindow):
            # Stage-2 probes may arrive up to W1 after a composite's
            # timestamp; widen its Theorem-1 margin accordingly.
            needed_slack = w1.seconds
            if second_config.expiry_slack < needed_slack:
                second_config = BicliqueConfig(
                    **{**second_config.__dict__,
                       "expiry_slack": needed_slack})
        elif not isinstance(second_config.window, FullHistoryWindow):
            raise ConfigurationError(
                "a full-history first stage requires a full-history "
                "second stage (composite timestamps are unbounded-late)")

        self.stage1 = BicliqueEngine(first_config, first_predicate)
        self.stage2 = BicliqueEngine(second_config, second_predicate)
        # Intercept stage-1 results: wrap them into composite tuples and
        # queue them for ingestion into stage 2.
        self.stage1._record_result = self._on_intermediate  # type: ignore[method-assign]
        for joiner in self.stage1.joiners.values():
            joiner.result_sink = self._on_intermediate

    # ------------------------------------------------------------------
    def _on_intermediate(self, result: JoinResult) -> None:
        self.report.intermediate_results += 1
        composite = StreamTuple(
            relation="R", ts=result.ts, values=composite_values(result),
            seq=self._composite_seq)
        self._composite_seq += 1
        self._pending_composites.append(composite)

    def _drain_composites(self) -> None:
        pending, self._pending_composites = self._pending_composites, []
        for composite in pending:
            self.stage2.ingest(composite)

    # ------------------------------------------------------------------
    def run(self, r_stream: Sequence[StreamTuple],
            s_stream: Sequence[StreamTuple],
            t_stream: Sequence[StreamTuple]
            ) -> tuple[list[CascadeResult], CascadeReport]:
        """Join three materialised time-ordered streams to completion."""
        t_arrivals = {id(t): t for t in t_stream}
        for t in merge_by_time(r_stream, s_stream, t_stream):
            self.report.tuples_ingested += 1
            if id(t) in t_arrivals:
                # T tuples go straight to stage 2 as its S relation.
                self.stage2.ingest(
                    StreamTuple(relation="S", ts=t.ts, values=t.values,
                                seq=t.seq))
            else:
                self.stage1.ingest(t)
                self._drain_composites()
        self.stage1.finish()
        self._drain_composites()
        self.stage2.finish()
        self.report.stage1_messages = self.stage1.network_stats.data_messages
        self.report.stage2_messages = self.stage2.network_stats.data_messages

        results = []
        for res in self.stage2.results:
            r_ident, s_ident = res.r[IDENTS_KEY]
            results.append(CascadeResult(
                r_ident=r_ident, s_ident=s_ident,
                t_ident=("T", res.s.seq), ts=res.ts))
        self.report.results = len(results)
        return results, self.report


def reference_cascade(r_stream: Iterable[StreamTuple],
                      s_stream: Iterable[StreamTuple],
                      t_stream: Iterable[StreamTuple],
                      first_predicate: JoinPredicate, first_window,
                      second_predicate: JoinPredicate, second_window,
                      timestamp_policy: str = "max") -> set[tuple]:
    """Brute-force oracle for the cascade semantics (tests/benches)."""
    from .tuples import make_result

    triples = set()
    for r in r_stream:
        for s in s_stream:
            if not first_window.contains(s.ts, r.ts):
                continue
            if not first_predicate.matches(r, s):
                continue
            inter = make_result(r, s, timestamp_policy=timestamp_policy)
            composite = StreamTuple(
                relation="R", ts=inter.ts, values=composite_values(inter))
            for t in t_stream:
                if not second_window.contains(t.ts, composite.ts):
                    continue
                t_as_s = StreamTuple(relation="S", ts=t.ts, values=t.values,
                                     seq=t.seq)
                if second_predicate.matches(composite, t_as_s):
                    triples.add((r.ident, s.ident, ("T", t.seq)))
    return triples
