"""N-way stream joins: left-deep cascades of join-bicliques.

Generalises :class:`~repro.core.multiway.CascadeJoin` (fixed at three
relations) to an arbitrary left-deep pipeline

    ((S0 ⋈ S1) ⋈ S2) ⋈ ... ⋈ Sk

with a per-stage predicate and window.  Stage *i* joins the composite
of the first *i+1* streams against stream *i+1*.

Attribute naming is uniform: the composite carries every constituent
attribute under ``<stream name>.<attribute>`` — including stream 0's
(so a stage-0 predicate reads e.g. ``EquiJoinPredicate("orders.custkey",
"custkey")``).  The right side of every stage is the next stream's raw
attributes.

Semantics (enforced against :func:`reference_pipeline`): a (k+1)-tuple
is produced iff, for every stage *i*, the stage predicate holds between
the stage-(i-1) composite and the stream-(i+1) member, and their
timestamps are within the stage window (composite timestamps follow the
``max`` policy — a composite is as new as its newest member).

Each stage's ``expiry_slack`` is automatically widened to the largest
upstream window, for the same bounded-lateness reason documented on
:class:`~repro.core.multiway.CascadeJoin`.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Sequence

from ..errors import ConfigurationError
from .biclique import BicliqueConfig, BicliqueEngine
from .predicates import JoinPredicate
from .tuples import JoinResult, StreamTuple
from .windows import FullHistoryWindow

#: Reserved composite attribute holding the constituent identities.
IDENTS_KEY = "_idents"


@dataclass(frozen=True)
class PipelineStage:
    """One ⋈ of the left-deep pipeline."""

    config: BicliqueConfig
    predicate: JoinPredicate


@dataclass(frozen=True)
class PipelineResult:
    """One produced (k+1)-way match."""

    idents: tuple[tuple[str, int], ...]
    ts: float

    @property
    def key(self) -> tuple:
        return self.idents


@dataclass
class PipelineReport:
    """Statistics of one pipeline run."""

    tuples_ingested: int = 0
    per_stage_results: list[int] = None  # type: ignore[assignment]
    results: int = 0

    def __post_init__(self) -> None:
        if self.per_stage_results is None:
            self.per_stage_results = []


def _prefixed(name: str, t: StreamTuple) -> dict:
    return {f"{name}.{attr}": value for attr, value in t.values.items()}


class CascadePipeline:
    """A left-deep N-way windowed stream join."""

    def __init__(self, stream_names: Sequence[str],
                 stages: Sequence[PipelineStage]) -> None:
        if len(stream_names) < 2:
            raise ConfigurationError("a pipeline joins at least two streams")
        if len(stages) != len(stream_names) - 1:
            raise ConfigurationError(
                f"{len(stream_names)} streams need {len(stream_names) - 1} "
                f"stages, got {len(stages)}")
        if len(set(stream_names)) != len(stream_names):
            raise ConfigurationError("stream names must be unique")
        self.stream_names = list(stream_names)
        self.report = PipelineReport()
        self._composite_seq = [0] * len(stages)
        self._pending: list[list[StreamTuple]] = [[] for _ in stages]

        self.engines: list[BicliqueEngine] = []
        upstream_window = 0.0
        for i, stage in enumerate(stages):
            config = stage.config
            window = config.window
            if isinstance(window, FullHistoryWindow):
                upstream_window = float("inf")
            if i > 0 and upstream_window > config.expiry_slack:
                if upstream_window == float("inf") and not isinstance(
                        window, FullHistoryWindow):
                    raise ConfigurationError(
                        "a full-history stage requires all downstream "
                        "stages to be full-history too")
                if upstream_window != float("inf"):
                    config = BicliqueConfig(
                        **{**config.__dict__,
                           "expiry_slack": upstream_window})
            engine = BicliqueEngine(config, stage.predicate)
            sink = self._make_intermediate_sink(i)
            if i < len(stages) - 1:
                engine._record_result = sink  # type: ignore[method-assign]
                for joiner in engine.joiners.values():
                    joiner.result_sink = sink
            self.engines.append(engine)
            if not isinstance(window, FullHistoryWindow):
                upstream_window = max(upstream_window, window.seconds)

    # ------------------------------------------------------------------
    def _make_intermediate_sink(self, stage_index: int):
        def sink(result: JoinResult) -> None:
            composite = self._merge(stage_index, result)
            self._pending[stage_index].append(composite)

        return sink

    def _merge(self, stage_index: int, result: JoinResult) -> StreamTuple:
        """Fuse a stage result into the next stage's left-side tuple."""
        right_name = self.stream_names[stage_index + 1]
        values = dict(result.r.values)
        values.pop(IDENTS_KEY, None)
        values.update(_prefixed(right_name, result.s))
        values.pop(f"{right_name}.{IDENTS_KEY}", None)
        values[IDENTS_KEY] = (*result.r[IDENTS_KEY],
                              (right_name, result.s.seq))
        seq = self._composite_seq[stage_index]
        self._composite_seq[stage_index] += 1
        return StreamTuple(relation="R", ts=result.ts, values=values,
                           seq=seq)

    def _drain(self) -> None:
        """Push every pending composite into its next stage, in order."""
        for i in range(len(self.engines) - 1):
            pending, self._pending[i] = self._pending[i], []
            for composite in pending:
                self.engines[i + 1].ingest(composite)

    # ------------------------------------------------------------------
    def run(self, streams: Sequence[Sequence[StreamTuple]]
            ) -> tuple[list[PipelineResult], PipelineReport]:
        """Join the materialised, time-ordered streams to completion.

        ``streams[i]`` corresponds to ``stream_names[i]``.
        """
        if len(streams) != len(self.stream_names):
            raise ConfigurationError(
                f"expected {len(self.stream_names)} streams, "
                f"got {len(streams)}")

        def sort_key(entry):
            index, t = entry
            return (t.ts, index, t.seq)

        arrivals = heapq.merge(
            *[[(i, t) for t in stream] for i, stream in enumerate(streams)],
            key=sort_key)
        name0 = self.stream_names[0]
        for index, t in arrivals:
            self.report.tuples_ingested += 1
            if index == 0:
                values = _prefixed(name0, t)
                values[IDENTS_KEY] = ((name0, t.seq),)
                self.engines[0].ingest(StreamTuple(
                    relation="R", ts=t.ts, values=values, seq=t.seq))
            else:
                self.engines[index - 1].ingest(StreamTuple(
                    relation="S", ts=t.ts, values=t.values, seq=t.seq))
            self._drain()
        for engine in self.engines:
            engine.finish()
            self._drain()

        self.report.per_stage_results = [
            engine.results_count for engine in self.engines]
        final_name = self.stream_names[-1]
        results = []
        for res in self.engines[-1].results:
            idents = (*res.r[IDENTS_KEY], (final_name, res.s.seq))
            results.append(PipelineResult(idents=idents, ts=res.ts))
        self.report.results = len(results)
        return results, self.report


def reference_pipeline(streams: Sequence[Sequence[StreamTuple]],
                       stream_names: Sequence[str],
                       stages: Sequence[PipelineStage]) -> set[tuple]:
    """Brute-force oracle for the left-deep pipeline semantics."""
    from .tuples import make_result

    name0 = stream_names[0]
    composites = []
    for t in streams[0]:
        values = _prefixed(name0, t)
        values[IDENTS_KEY] = ((name0, t.seq),)
        composites.append(StreamTuple(relation="R", ts=t.ts, values=values,
                                      seq=t.seq))
    for i, stage in enumerate(stages):
        right_name = stream_names[i + 1]
        window = stage.config.window
        next_composites = []
        for left in composites:
            for right in streams[i + 1]:
                if not window.contains(right.ts, left.ts):
                    continue
                right_as_s = StreamTuple(relation="S", ts=right.ts,
                                         values=right.values, seq=right.seq)
                if not stage.predicate.matches(left, right_as_s):
                    continue
                values = dict(left.values)
                values.pop(IDENTS_KEY, None)
                values.update(_prefixed(right_name, right))
                values[IDENTS_KEY] = (*left[IDENTS_KEY],
                                      (right_name, right.seq))
                result = make_result(left, right_as_s)
                next_composites.append(StreamTuple(
                    relation="R", ts=result.ts, values=values))
        composites = next_composites
    return {c[IDENTS_KEY] for c in composites}
