"""Join predicates.

The join-biclique model "is capable of generating the Cartesian product
of the joinable tuples and thus it supports any kind of join predicate"
(thesis §2.4).  The classes here cover the predicate families the
experiments use and that the router/index layers specialise on:

- :class:`EquiJoinPredicate` — ``R.a == S.b``; low selectivity; routed
  with hash partitioning and probed via hash indexes.
- :class:`BandJoinPredicate` — ``|R.a - S.b| <= band``; the classic
  theta-join benchmark; probed via sorted indexes.
- :class:`ThetaJoinPredicate` — ``R.a <op> S.b`` for ``< <= > >= !=``.
- :class:`ConjunctionPredicate` — AND of sub-predicates; uses the most
  selective indexable conjunct for probing and re-checks the rest.
- :class:`CrossPredicate` — always true (full Cartesian product).

Every predicate exposes a *selectivity class* (``"low"`` or ``"high"``),
which is what §3.2 uses to pick between hash-partitioning and random
routing.
"""

from __future__ import annotations

import operator
from dataclasses import dataclass
from typing import Callable, Sequence

from ..errors import PredicateError
from .tuples import StreamTuple

_THETA_OPS: dict[str, Callable[[object, object], bool]] = {
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
    "!=": operator.ne,
    "==": operator.eq,
}


class JoinPredicate:
    """Base class for binary join predicates ``P(r, s)``.

    ``r`` is always a tuple of relation R and ``s`` of relation S; the
    engine normalises operand order before calling :meth:`matches`.
    """

    #: "low" → hash-partitionable equi-join; "high" → needs broadcast.
    selectivity_class: str = "high"

    def matches(self, r: StreamTuple, s: StreamTuple) -> bool:
        raise NotImplementedError

    # -- routing/indexing hooks ----------------------------------------
    def key_attribute(self, relation_side: str) -> str | None:
        """Attribute usable as a hash/sort key on side ``"R"``/``"S"``.

        ``None`` means the predicate offers no single-attribute key on
        that side (e.g. :class:`CrossPredicate`).
        """
        return None


@dataclass(frozen=True)
class EquiJoinPredicate(JoinPredicate):
    """``R.r_attr == S.s_attr`` — the hash-partitionable equi-join."""

    r_attr: str
    s_attr: str

    selectivity_class = "low"

    def matches(self, r: StreamTuple, s: StreamTuple) -> bool:
        return r[self.r_attr] == s[self.s_attr]

    def key_attribute(self, relation_side: str) -> str:
        if relation_side == "R":
            return self.r_attr
        if relation_side == "S":
            return self.s_attr
        raise PredicateError(f"unknown relation side {relation_side!r}")

    def __str__(self) -> str:
        return f"R.{self.r_attr} == S.{self.s_attr}"


@dataclass(frozen=True)
class ThetaJoinPredicate(JoinPredicate):
    """``R.r_attr <op> S.s_attr`` with ``op`` one of ``< <= > >= != ==``.

    ``==`` is accepted for completeness but :class:`EquiJoinPredicate`
    should be preferred for it (it unlocks hash routing).
    """

    r_attr: str
    op: str
    s_attr: str

    selectivity_class = "high"

    def __post_init__(self) -> None:
        if self.op not in _THETA_OPS:
            raise PredicateError(
                f"unknown theta operator {self.op!r}; known: {sorted(_THETA_OPS)}")

    def matches(self, r: StreamTuple, s: StreamTuple) -> bool:
        return _THETA_OPS[self.op](r[self.r_attr], s[self.s_attr])

    def key_attribute(self, relation_side: str) -> str:
        if relation_side == "R":
            return self.r_attr
        if relation_side == "S":
            return self.s_attr
        raise PredicateError(f"unknown relation side {relation_side!r}")

    def __str__(self) -> str:
        return f"R.{self.r_attr} {self.op} S.{self.s_attr}"


@dataclass(frozen=True)
class BandJoinPredicate(JoinPredicate):
    """``|R.r_attr - S.s_attr| <= band`` — the standard theta benchmark.

    With ``band = 0`` this degenerates to a numeric equi-join; the
    constructor rejects negative bands.
    """

    r_attr: str
    s_attr: str
    band: float

    selectivity_class = "high"

    def __post_init__(self) -> None:
        if self.band < 0:
            raise PredicateError(f"band must be >= 0, got {self.band!r}")

    def matches(self, r: StreamTuple, s: StreamTuple) -> bool:
        return abs(r[self.r_attr] - s[self.s_attr]) <= self.band

    def key_attribute(self, relation_side: str) -> str:
        if relation_side == "R":
            return self.r_attr
        if relation_side == "S":
            return self.s_attr
        raise PredicateError(f"unknown relation side {relation_side!r}")

    def probe_range(self, probe_value: float) -> tuple[float, float]:
        """Closed value range on the opposite side that can match."""
        return (probe_value - self.band, probe_value + self.band)

    def __str__(self) -> str:
        return f"|R.{self.r_attr} - S.{self.s_attr}| <= {self.band:g}"


class ConjunctionPredicate(JoinPredicate):
    """Logical AND of several predicates.

    The selectivity class is "low" iff any conjunct is an equi-join
    (that conjunct then drives hash routing and index probing, with the
    remaining conjuncts re-checked on each candidate).
    """

    def __init__(self, predicates: Sequence[JoinPredicate]) -> None:
        if not predicates:
            raise PredicateError("conjunction needs at least one predicate")
        self.predicates = tuple(predicates)
        self._equi = next(
            (p for p in self.predicates if isinstance(p, EquiJoinPredicate)), None)
        self.selectivity_class = "low" if self._equi is not None else "high"

    @property
    def indexable_conjunct(self) -> JoinPredicate:
        """The conjunct used for index probing (equi conjunct if any)."""
        return self._equi if self._equi is not None else self.predicates[0]

    def matches(self, r: StreamTuple, s: StreamTuple) -> bool:
        return all(p.matches(r, s) for p in self.predicates)

    def key_attribute(self, relation_side: str) -> str | None:
        return self.indexable_conjunct.key_attribute(relation_side)

    def __str__(self) -> str:
        return " AND ".join(f"({p})" for p in self.predicates)


class CrossPredicate(JoinPredicate):
    """The always-true predicate: a windowed Cartesian product."""

    selectivity_class = "high"

    def matches(self, r: StreamTuple, s: StreamTuple) -> bool:
        return True

    def __str__(self) -> str:
        return "TRUE"


@dataclass(frozen=True)
class ExpensivePredicate(JoinPredicate):
    """A wrapped predicate with an artificial per-evaluation CPU cost.

    Each :meth:`matches` call spins a small deterministic LCG loop
    (``spin`` iterations) before delegating to the wrapped predicate —
    a stand-in for genuinely expensive predicates (regex matching,
    geo-distance, UDFs) whose cost dominates the join.  This makes the
    workload CPU-bound in pure Python, which is what the E17 scaling
    benchmark needs: transport and interpreter overheads stay fixed
    while the parallelisable fraction grows with ``spin``.

    Deliberately *not* indexable (``key_attribute`` returns ``None``
    and the selectivity class is ``"high"``): every probe compares
    against the full window, so each comparison pays the spin cost and
    total work scales with stored-tuples × probes — the worst case the
    runtime is supposed to spread across cores.
    """

    inner: JoinPredicate
    spin: int = 50

    selectivity_class = "high"

    def __post_init__(self) -> None:
        if self.spin < 0:
            raise PredicateError(f"spin must be >= 0, got {self.spin!r}")

    def matches(self, r: StreamTuple, s: StreamTuple) -> bool:
        # A data-dependent LCG the optimiser cannot hoist; the result
        # feeds an always-false branch so semantics stay the inner
        # predicate's.
        state = (r.seq * 2654435761 + s.seq * 40503 + 12345) & 0xFFFFFFFF
        for _ in range(self.spin):
            state = (state * 1103515245 + 12345) & 0x7FFFFFFF
        if state == 0xDEADBEEF:  # pragma: no cover - 2**-31 chance
            return False
        return self.inner.matches(r, s)

    def __str__(self) -> str:
        return f"expensive[{self.spin}]({self.inner})"
