"""Window specifications over data streams (thesis §2.2, Definition 4).

The join-biclique engine evaluates *windowed* joins: an incoming tuple
only joins against opposite-relation tuples that are still inside the
window.  The primary construct — and the one all experiments use — is
the time-based sliding window of ``Ws`` seconds: a tuple ``t`` is alive
with respect to the latest tuple ``t'`` iff ``t'.ts - t.ts <= Ws``.

Tuple-count windows are provided as an extension (the "future work"
style generalisation); they bound the number of retained tuples rather
than their age.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import WindowError
from .tuples import StreamTuple


@dataclass(frozen=True)
class TimeWindow:
    """A time-based sliding window of ``seconds`` time units.

    This is the window of Definition 4 and of Theorem 1: a stored tuple
    ``x`` may be discarded once an opposite-relation tuple ``y`` arrives
    with ``y.ts - x.ts > seconds``.
    """

    seconds: float

    def __post_init__(self) -> None:
        if self.seconds <= 0:
            raise WindowError(f"window extent must be positive, got {self.seconds!r}")

    def contains(self, stored_ts: float, probe_ts: float) -> bool:
        """Is a stored tuple with ``stored_ts`` joinable at ``probe_ts``?

        Symmetric in time: the window constrains how far *apart* the two
        tuples are (``|probe_ts - stored_ts| <= Ws``), matching the
        standard sliding-window join semantics.  Expiry, by contrast, is
        only ever applied in the forward direction (Theorem 1).
        """
        return abs(probe_ts - stored_ts) <= self.seconds

    def is_expired(self, stored_ts: float, probe_ts: float) -> bool:
        """Theorem 1 predicate: safe to discard the stored tuple."""
        return probe_ts - stored_ts > self.seconds

    def __str__(self) -> str:
        return f"TimeWindow({self.seconds:g}s)"


@dataclass(frozen=True)
class CountWindow:
    """A sliding window of the most recent ``count`` tuples (extension).

    Count windows cannot use Theorem 1 (expiry is positional, not
    temporal); the store that owns the tuples evicts the oldest one once
    the bound is exceeded.  Provided for API completeness and exercised
    by unit tests; the paper's experiments are all time-based.
    """

    count: int

    def __post_init__(self) -> None:
        if self.count <= 0:
            raise WindowError(f"count window must be positive, got {self.count!r}")

    def __str__(self) -> str:
        return f"CountWindow({self.count} tuples)"


@dataclass(frozen=True)
class FullHistoryWindow:
    """The unbounded "window": join against the full stream history.

    §2.2 notes that several systems (BiStream among them) support the
    join operator "over full or partial-historical states of the
    stream" rather than only sliding windows.  This window type makes
    every stored tuple joinable forever and nothing ever expire; the
    chained index still slices state by archive period (useful for
    introspection) but Theorem-1 discarding never fires.

    ``seconds`` is ``inf`` so that window-extent arithmetic (drain
    deadlines, hash-routing epoch horizons) naturally degenerates to
    "never": a draining unit under full history keeps its state — and
    keeps answering probes — indefinitely, so scale-in of stateful
    units is only meaningful with bounded windows.
    """

    @property
    def seconds(self) -> float:
        import math
        return math.inf

    def contains(self, stored_ts: float, probe_ts: float) -> bool:
        return True

    def is_expired(self, stored_ts: float, probe_ts: float) -> bool:
        return False

    def __str__(self) -> str:
        return "FullHistoryWindow()"


Window = TimeWindow | CountWindow | FullHistoryWindow


def window_lower_bound(window: TimeWindow, probe: StreamTuple) -> float:
    """Oldest timestamp still joinable with ``probe`` under ``window``."""
    return probe.ts - window.seconds
