"""The join-biclique engine: topology wiring and elastic scaling.

:class:`BicliqueEngine` assembles the full elastic-biclique dataflow of
thesis Figure 4 on top of the broker substrate:

- an entry destination ``tuples.exchange`` where a *pool of routers
  compete* (consumer group ``routergroup``),
- one inbox destination per joiner unit, carrying store envelopes, join
  envelopes and punctuations with pairwise-FIFO delivery,
- a result sink collecting :class:`~repro.core.tuples.JoinResult`.

Scaling follows the join-biclique property that units are independent:

- **scale-out** instantiates a new joiner, subscribes its inbox,
  registers the existing routers in its reorder buffer and lets the
  routing strategy re-balance *new* tuples onto it — no data migration;
- **scale-in** marks a unit as *draining*: it stops receiving store
  traffic immediately but keeps answering join probes until its stored
  window state has fully expired (one window extent), after which
  :meth:`reap_drained` removes it.  Results are therefore complete
  across scaling events, as the thesis's §5.2 closing remark requires.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..broker.broker import Broker
from ..broker.channels import ChannelLayer
from ..errors import ConfigurationError, ScalingError
from ..metrics.counters import NetworkStats
from ..metrics.latency import LatencyRecorder
from ..metrics.memory import MemorySnapshot
from .joiner import Joiner
from .predicates import JoinPredicate
from .router import Router, joiner_inbox
from .routing import HashRouting, JoinerGroup, RandomRouting, RoutingStrategy
from .tuples import JoinResult, StreamTuple
from .windows import FullHistoryWindow, TimeWindow

ENTRY_DESTINATION = "tuples.exchange"
ROUTER_GROUP = "routergroup"


@dataclass
class BicliqueConfig:
    """Configuration of a join-biclique deployment.

    Attributes:
        r_joiners / s_joiners: initial unit counts n and m.
        routers: size of the competing router pool.
        window: the sliding window Ws (time-based).
        archive_period: chained-index slice length P (``None`` =
            monolithic index, the E5 ablation baseline).
        routing: ``"random"`` (ContRand), ``"hash"`` (ContHash) or
            ``"auto"`` — pick by the predicate's selectivity class as
            §3.2 prescribes (hash for equi-joins, random otherwise).
        r_subgroups / s_subgroups: ContRand subgroup counts d and e
            (replication-vs-fan-out knob; 1 = pure biclique).
        hash_partitions: fixed hash space size for ContHash.
        ordered: enable the tuple-ordering protocol (§3.3).
        punctuation_interval: stream-time between router punctuations
            (thesis example: every 20 ms).
        expiry_slack: conservative Theorem-1 margin for multi-router
            deployments (see ChainedInMemoryIndex.expiry_slack).
        timestamp_policy: ``"max"`` or ``"min"`` output timestamps.
        archive_expired: keep expired sub-index slices in a per-unit
            archive tier instead of discarding them, enabling the
            partial-historical queries of :mod:`repro.core.archive`.
    """

    window: TimeWindow | FullHistoryWindow
    r_joiners: int = 2
    s_joiners: int = 2
    routers: int = 1
    archive_period: float | None = 30.0
    routing: str = "auto"
    r_subgroups: int = 1
    s_subgroups: int = 1
    hash_partitions: int = 64
    ordered: bool = True
    punctuation_interval: float = 0.02
    expiry_slack: float = 0.0
    timestamp_policy: str = "max"
    archive_expired: bool = False
    #: Keep every JoinResult object in ``engine.results``.  Disable for
    #: long-running load experiments where only counts and latency
    #: matter — results are then counted (``results_count``) and their
    #: latency recorded, but the objects are dropped.
    retain_results: bool = True

    def __post_init__(self) -> None:
        if not isinstance(self.window, (TimeWindow, FullHistoryWindow)):
            raise ConfigurationError(
                f"the engine joins over TimeWindow or FullHistoryWindow; "
                f"got {self.window!r} (count windows are a unit-level "
                f"extension without distributed semantics)")
        if self.r_joiners < 1 or self.s_joiners < 1:
            raise ConfigurationError("each side needs at least one joiner")
        if self.routers < 1:
            raise ConfigurationError("need at least one router")
        if self.routing not in ("auto", "random", "hash"):
            raise ConfigurationError(
                f"routing must be auto/random/hash, got {self.routing!r}")
        if self.punctuation_interval <= 0:
            raise ConfigurationError("punctuation interval must be positive")
        if self.r_subgroups > self.r_joiners or self.s_subgroups > self.s_joiners:
            raise ConfigurationError(
                "cannot have more subgroups than joiners on a side")


class EngineInstrumentation:
    """Hooks the cluster runtime uses to attach pods to engine components.

    The default implementation is a no-op: callbacks run inline (the
    synchronous driver).  :class:`repro.cluster.runtime.PodInstrumentation`
    overrides these to route every delivery through a simulated pod's
    serial CPU executor and to create/destroy pods on scaling events.
    """

    def wrap_joiner(self, joiner: Joiner, callback):
        """Return the consumer callback to register for a joiner inbox."""
        return callback

    def wrap_router(self, router: Router, callback):
        """Return the consumer callback to register for a router."""
        return callback

    def on_joiner_removed(self, joiner: Joiner) -> None:
        """Called after a drained joiner has been unwired."""


class BicliqueEngine:
    """A fully wired join-biclique deployment over a broker."""

    def __init__(self, config: BicliqueConfig, predicate: JoinPredicate,
                 broker: Broker | None = None,
                 instrumentation: EngineInstrumentation | None = None) -> None:
        self.config = config
        self.predicate = predicate
        self.instrumentation = instrumentation or EngineInstrumentation()
        self.broker = broker if broker is not None else Broker()
        self.channels = ChannelLayer(self.broker)
        self.network_stats = NetworkStats()
        self.results: list[JoinResult] = []
        #: Total results produced (also counted when retain_results=False).
        self.results_count = 0
        self.latency = LatencyRecorder()
        self._unit_seq = {"R": 0, "S": 0}
        self._router_seq = 0
        self._last_punctuation_ts: float | None = None

        self.groups = {
            "R": JoinerGroup("R", config.r_subgroups),
            "S": JoinerGroup("S", config.s_subgroups),
        }
        self.strategy = self._build_strategy()
        self.joiners: dict[str, Joiner] = {}
        self.routers: list[Router] = []

        self.channels.declare_destination(ENTRY_DESTINATION)
        for _ in range(config.r_joiners):
            self._add_joiner("R")
        for _ in range(config.s_joiners):
            self._add_joiner("S")
        # The strategy may have been built while the groups were still
        # empty (hash partition assignment needs members).
        self.strategy.on_membership_change(0.0)
        for _ in range(config.routers):
            self._add_router(f"router{self._router_seq}")
            self._router_seq += 1

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    def _build_strategy(self) -> RoutingStrategy:
        mode = self.config.routing
        if mode == "auto":
            mode = ("hash" if self.predicate.selectivity_class == "low"
                    else "random")
        if mode == "hash":
            return HashRouting(self.groups, self.predicate,
                               self.config.window,
                               partitions=self.config.hash_partitions)
        return RandomRouting(self.groups)

    @property
    def routing_mode(self) -> str:
        """The resolved routing strategy name."""
        return "hash" if isinstance(self.strategy, HashRouting) else "random"

    def _record_result(self, result: JoinResult) -> None:
        self.results_count += 1
        if self.config.retain_results:
            self.results.append(result)
        self.latency.record(max(0.0, result.produced_at - max(result.r.ts,
                                                              result.s.ts)))

    def _add_joiner(self, side: str) -> Joiner:
        unit_id = f"{side}{self._unit_seq[side]}"
        self._unit_seq[side] += 1
        joiner = Joiner(
            unit_id=unit_id, side=side, predicate=self.predicate,
            window=self.config.window,
            archive_period=self.config.archive_period,
            result_sink=self._record_result,
            ordered=self.config.ordered,
            timestamp_policy=self.config.timestamp_policy,
            expiry_slack=self.config.expiry_slack,
            archive_expired=self.config.archive_expired)
        self.joiners[unit_id] = joiner
        self.groups[side].add_unit(unit_id)
        inbox = joiner_inbox(unit_id)
        self.channels.declare_destination(inbox)
        callback = self.instrumentation.wrap_joiner(joiner, joiner.on_delivery)
        joiner.inbox_queue = self.channels.subscribe(
            inbox, unit_id, callback, group=f"{unit_id}.group")
        for router in self.routers:
            joiner.register_router(router.router_id)
        return joiner

    def _add_router(self, router_id: str) -> Router:
        router = Router(router_id, self.strategy, self.channels,
                        self.network_stats)
        self.routers.append(router)
        for joiner in self.joiners.values():
            joiner.register_router(router_id)
        callback = self.instrumentation.wrap_router(router, router.on_delivery)
        self.channels.subscribe(ENTRY_DESTINATION, router_id,
                                callback, group=ROUTER_GROUP)
        return router

    # ------------------------------------------------------------------
    # Ingestion (synchronous driver; the cluster layer drives via events)
    # ------------------------------------------------------------------
    def ingest(self, t: StreamTuple) -> None:
        """Publish one tuple to the system entry exchange.

        In a synchronous broker this routes, stores and probes
        immediately; punctuations are emitted whenever stream time has
        advanced one punctuation interval.
        """
        self._maybe_punctuate(t.ts)
        self.channels.send(ENTRY_DESTINATION, t, sender="source")

    def _maybe_punctuate(self, ts: float) -> None:
        if self._last_punctuation_ts is None:
            self._last_punctuation_ts = ts
            return
        if ts - self._last_punctuation_ts >= self.config.punctuation_interval:
            self.punctuate_all()
            self._last_punctuation_ts = ts

    def punctuate_all(self) -> None:
        """Have every router broadcast its current punctuation."""
        for router in self.routers:
            router.emit_punctuation()

    def finish(self) -> None:
        """End-of-stream: final punctuations release all buffered tuples."""
        self.punctuate_all()
        for joiner in self.joiners.values():
            joiner.flush()

    # ------------------------------------------------------------------
    # Elastic scaling
    # ------------------------------------------------------------------
    def scale_out(self, side: str, count: int = 1, *, now: float = 0.0) -> list[str]:
        """Add ``count`` joiners to a side; returns the new unit ids."""
        if count < 1:
            raise ScalingError(f"scale_out count must be >= 1, got {count}")
        new_ids = [self._add_joiner(side).unit_id for _ in range(count)]
        self.strategy.on_membership_change(now)
        return new_ids

    def scale_in(self, side: str, *, now: float = 0.0,
                 unit_id: str | None = None) -> str:
        """Start draining one unit of a side; returns its id.

        The unit keeps serving join probes until its window state has
        expired; call :meth:`reap_drained` periodically to remove it.
        """
        group = self.groups[side]
        if unit_id is None:
            active = group.active_units()
            if len(active) <= 1:
                raise ScalingError(
                    f"side {side} has only {len(active)} active unit(s)")
            unit_id = active[-1]
        group.start_draining(unit_id, now)
        self.strategy.on_membership_change(now)
        return unit_id

    def reap_drained(self, *, now: float) -> list[str]:
        """Remove draining units whose stored state has fully expired."""
        removed: list[str] = []
        for side in ("R", "S"):
            group = self.groups[side]
            for unit_id in group.drained_units(now, self.config.window):
                joiner = self.joiners.pop(unit_id)
                self.channels.unsubscribe(joiner.inbox_queue, unit_id,
                                          delete_queue=True)
                group.remove_unit(unit_id)
                self.instrumentation.on_joiner_removed(joiner)
                removed.append(unit_id)
        if removed:
            self.strategy.on_membership_change(now)
        return removed

    def scale_routers(self, count: int) -> None:
        """Resize the competing router pool to ``count`` instances.

        Routers are stateless (§3.1.1: only counters and rate
        statistics), so scaling them is what the thesis calls "easily
        scale up or down the router-services depending on the tuple
        rate":

        - scale-out: a new router simply joins the ``routergroup``
          consumer group and is registered in every joiner's reorder
          buffer (its punctuations take part in the watermark);
        - scale-in: the removed router emits one final punctuation
          covering everything it ever sent, is detached from the entry
          queue, and is unregistered from the joiners — which may
          immediately release tuples its absence was holding back.
        """
        if count < 1:
            raise ScalingError("router pool needs at least one instance")
        while len(self.routers) < count:
            # Never reuse a router id: in-flight envelopes from a
            # previously removed router must not alias a new counter
            # sequence on any channel.
            counter_floor = max(
                (router.next_counter for router in self.routers), default=0)
            router = self._add_router(f"router{self._router_seq}")
            self._router_seq += 1
            # Keep the global (counter, router) order time-aligned: a
            # fresh counter of 0 would sort the newcomer's tuples before
            # everything currently in flight.
            router.advance_counter_to(counter_floor)
        while len(self.routers) > count:
            router = self.routers.pop()
            router.emit_punctuation()
            self.channels.unsubscribe(
                f"{ENTRY_DESTINATION}.{ROUTER_GROUP}", router.router_id)
            for joiner in self.joiners.values():
                joiner.unregister_router(router.router_id)

    # ------------------------------------------------------------------
    # Failure injection
    # ------------------------------------------------------------------
    def fail_unit(self, unit_id: str) -> Joiner:
        """Crash a joiner unit and restart it empty (stateless recovery).

        Models the microservice failure mode the thesis's architecture
        is designed around: units are independent, subscriptions are
        durable (the group queue buffers while the consumer is down),
        but a crashed unit's *window state is lost*.  The replacement
        re-attaches to the same inbox and refills organically: pairs
        whose stored half lived only on the crashed unit may be missed
        for up to one window extent, after which results are exact
        again — there is no replica to recover from, by design (the
        no-replication trade-off of the join-biclique model).

        Returns the replacement joiner.
        """
        old = self.joiners[unit_id]
        self.channels.unsubscribe(old.inbox_queue, unit_id)
        self.instrumentation.on_joiner_removed(old)
        replacement = Joiner(
            unit_id=unit_id, side=old.side, predicate=self.predicate,
            window=self.config.window,
            archive_period=self.config.archive_period,
            result_sink=self._record_result,
            ordered=self.config.ordered,
            timestamp_policy=self.config.timestamp_policy,
            expiry_slack=self.config.expiry_slack,
            archive_expired=self.config.archive_expired)
        self.joiners[unit_id] = replacement
        for router in self.routers:
            replacement.register_router(router.router_id)
        callback = self.instrumentation.wrap_joiner(
            replacement, replacement.on_delivery)
        replacement.inbox_queue = self.channels.subscribe(
            joiner_inbox(unit_id), unit_id, callback,
            group=f"{unit_id}.group")
        return replacement

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def unit_ids(self, side: str | None = None) -> list[str]:
        if side is None:
            return sorted(self.joiners)
        return self.groups[side].all_units()

    def memory_snapshot(self, now: float = 0.0) -> MemorySnapshot:
        return MemorySnapshot(
            time=now,
            per_unit_live_bytes={uid: j.live_bytes
                                 for uid, j in self.joiners.items()})

    def total_stored_tuples(self) -> int:
        return sum(j.stored_tuples for j in self.joiners.values())

    def total_comparisons(self) -> int:
        return sum(j.comparisons for j in self.joiners.values())
