"""The join-biclique engine: topology wiring and elastic scaling.

:class:`BicliqueEngine` assembles the full elastic-biclique dataflow of
thesis Figure 4 on top of the broker substrate:

- an entry destination ``tuples.exchange`` where a *pool of routers
  compete* (consumer group ``routergroup``),
- one inbox destination per joiner unit, carrying store envelopes, join
  envelopes and punctuations with pairwise-FIFO delivery,
- a result sink collecting :class:`~repro.core.tuples.JoinResult`.

Scaling follows the join-biclique property that units are independent:

- **scale-out** instantiates a new joiner, subscribes its inbox,
  registers the existing routers in its reorder buffer and lets the
  routing strategy re-balance *new* tuples onto it — no data migration;
- **scale-in** marks a unit as *draining*: it stops receiving store
  traffic immediately but keeps answering join probes until its stored
  window state has fully expired (one window extent), after which
  :meth:`reap_drained` removes it.  Results are therefore complete
  across scaling events, as the thesis's §5.2 closing remark requires.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..broker.broker import Broker
from ..broker.channels import ChannelLayer
from ..errors import ConfigurationError, ScalingError
from ..metrics.counters import NetworkStats
from ..metrics.latency import LatencyRecorder
from ..metrics.memory import MemorySnapshot
from ..obs.trace import NOOP_TRACER, SPAN_SCALE, NoopTracer
from .batching import BatchingConfig, EnvelopeBatch
from .joiner import Joiner
from .ordering import KIND_STORE, Envelope
from .predicates import JoinPredicate
from .recovery import ReplayLog
from .router import Router, joiner_inbox
from .routing import HashRouting, JoinerGroup, RandomRouting, RoutingStrategy
from .tuples import JoinResult, StreamTuple
from .windows import FullHistoryWindow, TimeWindow

if TYPE_CHECKING:
    from ..overload.manager import OverloadManager

ENTRY_DESTINATION = "tuples.exchange"
ROUTER_GROUP = "routergroup"


@dataclass
class BicliqueConfig:
    """Configuration of a join-biclique deployment.

    Attributes:
        r_joiners / s_joiners: initial unit counts n and m.
        routers: size of the competing router pool.
        window: the sliding window Ws (time-based).
        archive_period: chained-index slice length P (``None`` =
            monolithic index, the E5 ablation baseline).
        routing: ``"random"`` (ContRand), ``"hash"`` (ContHash) or
            ``"auto"`` — pick by the predicate's selectivity class as
            §3.2 prescribes (hash for equi-joins, random otherwise).
        r_subgroups / s_subgroups: ContRand subgroup counts d and e
            (replication-vs-fan-out knob; 1 = pure biclique).
        hash_partitions: fixed hash space size for ContHash.
        ordered: enable the tuple-ordering protocol (§3.3).
        punctuation_interval: stream-time between router punctuations
            (thesis example: every 20 ms).
        expiry_slack: conservative Theorem-1 margin for multi-router
            deployments (see ChainedInMemoryIndex.expiry_slack).
        timestamp_policy: ``"max"`` or ``"min"`` output timestamps.
        archive_expired: keep expired sub-index slices in a per-unit
            archive tier instead of discarding them, enabling the
            partial-historical queries of :mod:`repro.core.archive`.
    """

    window: TimeWindow | FullHistoryWindow
    r_joiners: int = 2
    s_joiners: int = 2
    routers: int = 1
    archive_period: float | None = 30.0
    routing: str = "auto"
    r_subgroups: int = 1
    s_subgroups: int = 1
    hash_partitions: int = 64
    ordered: bool = True
    punctuation_interval: float = 0.02
    expiry_slack: float = 0.0
    timestamp_policy: str = "max"
    archive_expired: bool = False
    #: Keep every JoinResult object in ``engine.results``.  Disable for
    #: long-running load experiments where only counts and latency
    #: matter — results are then counted (``results_count``) and their
    #: latency recorded, but the objects are dropped.
    retain_results: bool = True
    #: Window-replay recovery: routers retain the last window-extent of
    #: routed store envelopes, and a crashed joiner's replacement
    #: rebuilds its window state from them in store-only mode, driving
    #: crash result loss to zero while preserving exactly-once output.
    #: Off by default: the bare join-biclique model has no replica to
    #: recover from, and the E14 blast-radius experiment measures that.
    replay_recovery: bool = False

    def __post_init__(self) -> None:
        if not isinstance(self.window, (TimeWindow, FullHistoryWindow)):
            raise ConfigurationError(
                f"the engine joins over TimeWindow or FullHistoryWindow; "
                f"got {self.window!r} (count windows are a unit-level "
                f"extension without distributed semantics)")
        if self.r_joiners < 1 or self.s_joiners < 1:
            raise ConfigurationError("each side needs at least one joiner")
        if self.routers < 1:
            raise ConfigurationError("need at least one router")
        if self.routing not in ("auto", "random", "hash"):
            raise ConfigurationError(
                f"routing must be auto/random/hash, got {self.routing!r}")
        if self.punctuation_interval <= 0:
            raise ConfigurationError("punctuation interval must be positive")
        if self.r_subgroups > self.r_joiners or self.s_subgroups > self.s_joiners:
            raise ConfigurationError(
                "cannot have more subgroups than joiners on a side")


class EngineInstrumentation:
    """Hooks the cluster runtime uses to attach pods to engine components.

    The default implementation is a no-op: callbacks run inline (the
    synchronous driver).  :class:`repro.cluster.runtime.PodInstrumentation`
    overrides these to route every delivery through a simulated pod's
    serial CPU executor and to create/destroy pods on scaling events.
    """

    def wrap_joiner(self, joiner: Joiner, callback):
        """Return the consumer callback to register for a joiner inbox."""
        return callback

    def wrap_router(self, router: Router, callback):
        """Return the consumer callback to register for a router."""
        return callback

    def on_joiner_removed(self, joiner: Joiner) -> None:
        """Called after a drained joiner has been unwired."""

    def on_joiner_crashed(self, joiner: Joiner) -> None:
        """Called when a joiner crashes: its pod must die with it."""

    def on_router_crashed(self, router: Router) -> None:
        """Called when a router crashes: its pod must die with it."""


@dataclass
class _CrashedJoiner:
    """Recovery material captured at joiner-crash time."""

    joiner: Joiner
    #: Replayable store envelopes already *processed* (acknowledged) by
    #: the dead incarnation — safe to restore store-only.
    snapshot: list[Envelope] = field(default_factory=list)
    #: Envelopes delivered but never processed (synchronous mode only;
    #: the simulated broker redelivers these itself).
    pending: list[Envelope] = field(default_factory=list)
    #: Member keys of partially-processed transport batches the dead
    #: incarnation already handled: the broker redelivers the whole
    #: batch, and the replacement must drop exactly these members.
    skip: set[tuple[int, str, str]] = field(default_factory=set)


class BicliqueEngine:
    """A fully wired join-biclique deployment over a broker."""

    def __init__(self, config: BicliqueConfig, predicate: JoinPredicate,
                 broker: Broker | None = None,
                 instrumentation: EngineInstrumentation | None = None,
                 tracer: NoopTracer = NOOP_TRACER,
                 overload: "OverloadManager | None" = None,
                 batching: BatchingConfig | None = None) -> None:
        self.config = config
        self.predicate = predicate
        self.instrumentation = instrumentation or EngineInstrumentation()
        self.broker = broker if broker is not None else Broker()
        #: Transport micro-batching shared by every router (see
        #: :mod:`repro.core.batching`); the default config is a no-op.
        self.batching = batching if batching is not None else BatchingConfig()
        #: Linger-timer hook handed to every router; the cluster runtime
        #: installs one backed by the simulation kernel via
        #: :meth:`set_batch_scheduler`.
        self.batch_scheduler = None
        #: Overload manager (bounded queues, credits, shedding); wired
        #: through every joiner/router attach below when present.
        self.overload = overload
        #: Causal tracer threaded into every router/joiner (no-op by
        #: default; see :mod:`repro.obs.trace`).
        self.tracer = tracer
        if tracer.enabled and self.broker.on_deliver is None:
            # Deliver spans come from the broker's observer hook; only
            # claim it if nothing else (user metrics hook) already has.
            self.broker.on_deliver = tracer.observe_delivery
        self.channels = ChannelLayer(self.broker)
        self.network_stats = NetworkStats()
        self.results: list[JoinResult] = []
        #: Total results produced (also counted when retain_results=False).
        self.results_count = 0
        self.latency = LatencyRecorder()
        self._unit_seq = {"R": 0, "S": 0}
        self._router_seq = 0
        self._last_punctuation_ts: float | None = None
        #: Crashed-but-not-yet-restarted components.
        self._crashed: dict[str, _CrashedJoiner] = {}
        self._crashed_routers: dict[str, int] = {}
        #: Drained messages destroyed per reaped unit (satellite of the
        #: scale-in data-loss audit; consumed by the cluster runtime).
        self.last_reap_drops: dict[str, int] = {}
        self.replay_log: ReplayLog | None = None
        if config.replay_recovery:
            # Retain one window extent plus the Theorem-1 slack: every
            # tuple that could still match a future probe is replayable.
            self.replay_log = ReplayLog(
                retention=config.window.seconds + config.expiry_slack)

        self.groups = {
            "R": JoinerGroup("R", config.r_subgroups),
            "S": JoinerGroup("S", config.s_subgroups),
        }
        self.strategy = self._build_strategy()
        self.joiners: dict[str, Joiner] = {}
        self.routers: list[Router] = []

        self.channels.declare_destination(ENTRY_DESTINATION)
        for _ in range(config.r_joiners):
            self._add_joiner("R")
        for _ in range(config.s_joiners):
            self._add_joiner("S")
        # The strategy may have been built while the groups were still
        # empty (hash partition assignment needs members).
        self.strategy.on_membership_change(0.0)
        for _ in range(config.routers):
            self._add_router(f"router{self._router_seq}")
            self._router_seq += 1
        if self.overload is not None:
            # The entry queue exists once the first router subscribed;
            # its fill ratio is the admission-control severity signal.
            self.overload.attach_entry(f"{ENTRY_DESTINATION}.{ROUTER_GROUP}")
            if isinstance(self.strategy, RandomRouting):
                # Content-insensitive store placement is free to avoid
                # straggling units; hash placement is not (correctness).
                self.strategy.hot_filter = self.overload.hot_units

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    def _build_strategy(self) -> RoutingStrategy:
        mode = self.config.routing
        if mode == "auto":
            mode = ("hash" if self.predicate.selectivity_class == "low"
                    else "random")
        if mode == "hash":
            return HashRouting(self.groups, self.predicate,
                               self.config.window,
                               partitions=self.config.hash_partitions)
        return RandomRouting(self.groups)

    @property
    def routing_mode(self) -> str:
        """The resolved routing strategy name."""
        return "hash" if isinstance(self.strategy, HashRouting) else "random"

    def _record_result(self, result: JoinResult) -> None:
        self.results_count += 1
        if self.config.retain_results:
            self.results.append(result)
        self.latency.record(max(0.0, result.produced_at - max(result.r.ts,
                                                              result.s.ts)))

    def _add_joiner(self, side: str) -> Joiner:
        unit_id = f"{side}{self._unit_seq[side]}"
        self._unit_seq[side] += 1
        joiner = Joiner(
            unit_id=unit_id, side=side, predicate=self.predicate,
            window=self.config.window,
            archive_period=self.config.archive_period,
            result_sink=self._record_result,
            ordered=self.config.ordered,
            timestamp_policy=self.config.timestamp_policy,
            expiry_slack=self.config.expiry_slack,
            archive_expired=self.config.archive_expired,
            tracer=self.tracer)
        self.joiners[unit_id] = joiner
        self.groups[side].add_unit(unit_id)
        inbox = joiner_inbox(unit_id)
        self.channels.declare_destination(inbox)
        self._wire_joiner(joiner)
        return joiner

    def _wire_joiner(self, joiner: Joiner) -> None:
        """Subscribe a (new or replacement) joiner to its inbox.

        Routers are registered *before* the subscription: subscribing
        drains any queue backlog, and those envelopes must find their
        routers in the reorder buffer's watermark set.
        """
        for router in self.routers:
            joiner.register_router(router.router_id)
        # Envelopes from a currently-crashed router may still be in
        # flight (or redelivered later); it must count in the watermark.
        for router_id in self._crashed_routers:
            joiner.register_router(router_id)
        if self.broker.is_simulated:
            joiner.acker = self.broker.ack
        callback = self.instrumentation.wrap_joiner(joiner, joiner.on_delivery)
        joiner.inbox_queue = self.channels.subscribe(
            joiner_inbox(joiner.unit_id), joiner.unit_id, callback,
            group=f"{joiner.unit_id}.group",
            manual_ack=self.broker.is_simulated)
        if self.overload is not None:
            self.overload.attach_joiner(joiner)

    def set_batch_scheduler(self, scheduler) -> None:
        """Install the linger-timer hook on current and future routers."""
        self.batch_scheduler = scheduler
        for router in self.routers:
            router.batch_scheduler = scheduler

    def _add_router(self, router_id: str, *, counter_floor: int = 0) -> Router:
        router = Router(router_id, self.strategy, self.channels,
                        self.network_stats, replay_log=self.replay_log,
                        tracer=self.tracer, batching=self.batching)
        router.batch_scheduler = self.batch_scheduler
        # Align the counter *before* subscribing: subscribing drains any
        # entry-queue backlog synchronously, and tuples stamped below the
        # floor would be dropped by the joiners' dedup as regressions.
        router.advance_counter_to(counter_floor)
        self.routers.append(router)
        for joiner in self.joiners.values():
            joiner.register_router(router_id)
        if self.broker.is_simulated:
            router.acker = self.broker.ack
        callback = self.instrumentation.wrap_router(router, router.on_delivery)
        self.channels.subscribe(ENTRY_DESTINATION, router_id,
                                callback, group=ROUTER_GROUP,
                                manual_ack=self.broker.is_simulated)
        if self.overload is not None:
            self.overload.attach_router(router)
        return router

    # ------------------------------------------------------------------
    # Ingestion (synchronous driver; the cluster layer drives via events)
    # ------------------------------------------------------------------
    def ingest(self, t: StreamTuple) -> None:
        """Publish one tuple to the system entry exchange.

        In a synchronous broker this routes, stores and probes
        immediately; punctuations are emitted whenever stream time has
        advanced one punctuation interval.
        """
        self._maybe_punctuate(t.ts)
        self.channels.send(ENTRY_DESTINATION, t, sender="source")

    def _maybe_punctuate(self, ts: float) -> None:
        if self._last_punctuation_ts is None:
            self._last_punctuation_ts = ts
            return
        if ts - self._last_punctuation_ts >= self.config.punctuation_interval:
            self.punctuate_all()
            self._last_punctuation_ts = ts

    def punctuate_all(self) -> None:
        """Have every router broadcast its current punctuation."""
        for router in self.routers:
            router.emit_punctuation()

    def maintain_punctuations(self, now: float) -> None:
        """Keep watermarks advancing while admission is stalled.

        Parked deliveries are not yet stamped with a routing counter,
        so the routers' current punctuations stay truthful.  Without
        this a fully blocked producer deadlocks: no ingest means no
        punctuations, joiners never release their reorder buffers, no
        credits are granted, and the entry queue never drains.
        """
        self._maybe_punctuate(now)

    def flush_transport(self) -> int:
        """Flush every live router's buffered transport batches.

        On a simulated broker the runtime must call this *before* the
        final event-loop drain: the flush only schedules deliveries, and
        a batch flushed after the last drain would never arrive.
        Returns the number of transport messages sent.
        """
        return sum(router.flush_batches(cause="drain")
                   for router in self.routers)

    def finish(self) -> None:
        """End-of-stream: final punctuations release all buffered tuples."""
        self.punctuate_all()
        for joiner in self.joiners.values():
            joiner.flush()

    # ------------------------------------------------------------------
    # Elastic scaling
    # ------------------------------------------------------------------
    def scale_out(self, side: str, count: int = 1, *, now: float = 0.0) -> list[str]:
        """Add ``count`` joiners to a side; returns the new unit ids."""
        if count < 1:
            raise ScalingError(f"scale_out count must be >= 1, got {count}")
        new_ids = [self._add_joiner(side).unit_id for _ in range(count)]
        self.strategy.on_membership_change(now)
        if self.tracer.enabled:
            for unit_id in new_ids:
                self.tracer.record(SPAN_SCALE, now, unit_id,
                                   detail=f"scale_out:{side}")
        return new_ids

    def scale_in(self, side: str, *, now: float = 0.0,
                 unit_id: str | None = None) -> str:
        """Start draining one unit of a side; returns its id.

        The unit keeps serving join probes until its window state has
        expired; call :meth:`reap_drained` periodically to remove it.
        """
        group = self.groups[side]
        if unit_id is None:
            active = group.active_units()
            if len(active) <= 1:
                raise ScalingError(
                    f"side {side} has only {len(active)} active unit(s)")
            candidates = [uid for uid in active if uid not in self._crashed]
            if len(candidates) == 0 or len(active) - 1 < 1:
                raise ScalingError(
                    f"side {side} has no scalable-in unit "
                    f"(crashed: {sorted(self._crashed)})")
            unit_id = candidates[-1]
        elif unit_id in self._crashed:
            raise ScalingError(
                f"unit {unit_id!r} is crashed; restart it before draining")
        group.start_draining(unit_id, now)
        self.strategy.on_membership_change(now)
        if self.tracer.enabled:
            self.tracer.record(SPAN_SCALE, now, unit_id,
                               detail=f"scale_in:{side}")
        return unit_id

    def reap_drained(self, *, now: float) -> list[str]:
        """Remove draining units whose stored state has fully expired.

        Any messages destroyed with a reaped unit's queue (in-flight
        probes, punctuations) are surfaced per unit in
        :attr:`last_reap_drops` rather than silently swallowed.
        """
        removed: list[str] = []
        self.last_reap_drops = {}
        for side in ("R", "S"):
            group = self.groups[side]
            for unit_id in group.drained_units(now, self.config.window):
                if unit_id in self._crashed:
                    continue  # dead, not drained; restart handles it
                joiner = self.joiners.pop(unit_id)
                dropped = self.channels.unsubscribe(
                    joiner.inbox_queue, unit_id, delete_queue=True)
                if dropped:
                    self.last_reap_drops[unit_id] = dropped
                if self.replay_log is not None:
                    self.replay_log.forget(unit_id)
                group.remove_unit(unit_id)
                if self.overload is not None:
                    self.overload.detach_joiner(unit_id)
                self.instrumentation.on_joiner_removed(joiner)
                removed.append(unit_id)
                if self.tracer.enabled:
                    self.tracer.record(SPAN_SCALE, now, unit_id,
                                       detail="reap")
        if removed:
            self.strategy.on_membership_change(now)
        return removed

    def scale_routers(self, count: int) -> None:
        """Resize the competing router pool to ``count`` instances.

        Routers are stateless (§3.1.1: only counters and rate
        statistics), so scaling them is what the thesis calls "easily
        scale up or down the router-services depending on the tuple
        rate":

        - scale-out: a new router simply joins the ``routergroup``
          consumer group and is registered in every joiner's reorder
          buffer (its punctuations take part in the watermark);
        - scale-in: the removed router emits one final punctuation
          covering everything it ever sent, is detached from the entry
          queue, and is unregistered from the joiners — which may
          immediately release tuples its absence was holding back.
        """
        if count < 1:
            raise ScalingError("router pool needs at least one instance")
        grew = len(self.routers) < count
        while len(self.routers) < count:
            # Never reuse a router id: in-flight envelopes from a
            # previously removed router must not alias a new counter
            # sequence on any channel.
            # Keep the global (counter, router) order time-aligned: a
            # fresh counter of 0 would sort the newcomer's tuples before
            # everything currently in flight.
            counter_floor = max(
                (router.next_counter for router in self.routers), default=0)
            # Align the *survivors* to the same floor too: pool counters
            # drift apart across resizes (each newcomer floors at the
            # then-max), and a skewed pool stamps keys that invert
            # arrival order — see _realign_router_pool.
            for router in self.routers:
                router.advance_counter_to(counter_floor)
            self._add_router(f"router{self._router_seq}",
                             counter_floor=counter_floor)
            self._router_seq += 1
        if grew:
            self._realign_router_pool()
        while len(self.routers) > count:
            router = self.routers.pop()
            # NB: removal needs no realignment — the queue preserves the
            # rotation position relative to the survivors, so the
            # counters keep following the rotation.
            # Anything parked under backpressure must go out before the
            # final punctuation, which promises every stamped counter
            # has been sent.
            router.release_parked()
            router.emit_punctuation()
            router.retired = True
            self.channels.unsubscribe(
                f"{ENTRY_DESTINATION}.{ROUTER_GROUP}", router.router_id)
            for joiner in self.joiners.values():
                joiner.unregister_router(router.router_id)

    def _realign_router_pool(self) -> None:
        """Re-establish arrival-order stamping after a pool change.

        The ordering protocol releases envelopes in global
        ``(counter, router_id)`` order, which extends *arrival* order
        only while the pool's counters follow the entry-queue rotation.
        Inserting a router mid-cycle (scale-out, crash restart) breaks
        that: the newcomer is floored at the pool max while the
        survivors sit mid-rotation, so a later tuple can be stamped
        with a smaller key than an earlier one — at a joiner the later
        probe then releases *before* the earlier store and the pair is
        silently missed (thesis Fig. 8 (c); the fuzz-found
        hash+resize result loss).

        The repair: every pool counter is advanced to the common floor
        F = max(next_counter) and the entry queue's round-robin
        rotation is restarted at the smallest router id.  Stamps then
        proceed ``(F, router0), (F, router1), …, (F+1, router0), …`` —
        strictly increasing in dispatch order — and every previously
        stamped key is at most ``(F-1, ·)``, so the extended order is
        consistent with everything already in flight.
        """
        floor = max((r.next_counter for r in self.routers), default=0)
        for router in self.routers:
            router.advance_counter_to(floor)
        entry_queue = self.broker.queue(
            f"{ENTRY_DESTINATION}.{ROUTER_GROUP}")
        entry_queue.reset_rotation(sort=True)

    # ------------------------------------------------------------------
    # Failure injection
    # ------------------------------------------------------------------
    def crash_unit(self, unit_id: str) -> Joiner:
        """Kill a joiner pod: its in-memory window state is lost.

        The unit stays a member of its side (routers keep targeting it;
        the durable group queue buffers its traffic) until
        :meth:`restart_unit` attaches a replacement.  On a simulated
        broker every unacknowledged delivery is requeued for redelivery;
        with :attr:`BicliqueConfig.replay_recovery` enabled the recovery
        material for the replacement is snapshotted here, at crash time.

        Returns the dead joiner (for inspection).
        """
        if unit_id in self._crashed:
            raise ScalingError(f"unit {unit_id!r} is already crashed")
        if unit_id not in self.joiners:
            raise ScalingError(f"unknown unit {unit_id!r}")
        old = self.joiners.pop(unit_id)
        recover = self.config.replay_recovery
        pending: list[Envelope] = []
        unprocessed_keys: set[tuple[int, str]] = set()
        skip_keys: set[tuple[int, str, str]] = set()
        if self.broker.is_simulated:
            # Deliveries the dead incarnation never processed: the
            # broker will redeliver them, so they must not *also* be
            # restored from the replay log.  A transport batch needs
            # member-level resolution: the broker redelivers the whole
            # batch, but some members may already have been processed
            # (released from the reorder buffer and settled) before the
            # crash — those must be dropped exactly once on redelivery.
            for tag, payload in self.broker.unacked_items(unit_id):
                if isinstance(payload, EnvelopeBatch):
                    delivered = tag in old._batch_refs
                    for env in payload:
                        key = (env.counter, env.router_id, env.kind)
                        if delivered and key not in old._ack_tags:
                            # Processed (or duplicate-dropped) member of
                            # a partially-settled batch.
                            skip_keys.add(key)
                        elif env.kind == KIND_STORE:
                            unprocessed_keys.add((env.counter, env.router_id))
                elif isinstance(payload, Envelope) and payload.kind == KIND_STORE:
                    unprocessed_keys.add((payload.counter, payload.router_id))
            self.broker.crash_consumer(old.inbox_queue, unit_id)
        else:
            self.channels.unsubscribe(old.inbox_queue, unit_id)
            if recover:
                # No broker-side delivery tracking in synchronous mode:
                # the reorder buffer's contents *are* the
                # delivered-but-unprocessed set.  They are re-injected
                # into the replacement instead of redelivered.
                pending = old.reorder.drain()
                unprocessed_keys = {(e.counter, e.router_id) for e in pending
                                    if e.kind == KIND_STORE}
        snapshot: list[Envelope] = []
        if recover and self.replay_log is not None:
            snapshot = [e for e in self.replay_log.snapshot(unit_id)
                        if (e.counter, e.router_id) not in unprocessed_keys]
        self._crashed[unit_id] = _CrashedJoiner(old, snapshot, pending,
                                                skip_keys)
        self.instrumentation.on_joiner_crashed(old)
        if self.tracer.enabled:
            # Best available clock: the dead unit's last processed time.
            self.tracer.record(SPAN_SCALE, old._now, unit_id, detail="crash")
        return old

    def restart_unit(self, unit_id: str) -> Joiner:
        """Attach a replacement joiner for a crashed unit.

        With replay recovery the replacement first rebuilds its window
        state **store-only** from the crash-time snapshot — replayed
        tuples never probe, so nothing is emitted twice — then resumes
        normal processing; queued/redelivered envelopes flow in through
        the ordinary delivery path.  Without it the replacement starts
        empty (the thesis's no-replication baseline).
        """
        try:
            state = self._crashed.pop(unit_id)
        except KeyError:
            raise ScalingError(f"unit {unit_id!r} is not crashed") from None
        old = state.joiner
        replacement = Joiner(
            unit_id=unit_id, side=old.side, predicate=self.predicate,
            window=self.config.window,
            archive_period=self.config.archive_period,
            result_sink=self._record_result,
            ordered=self.config.ordered,
            timestamp_policy=self.config.timestamp_policy,
            expiry_slack=self.config.expiry_slack,
            archive_expired=self.config.archive_expired,
            tracer=self.tracer)
        self.joiners[unit_id] = replacement
        replacement.skip_once = set(state.skip)
        if state.snapshot:
            replacement.restore(state.snapshot)
        # Synchronous mode: re-inject the dead incarnation's unprocessed
        # envelopes *before* subscribing — the subscription drains the
        # queue backlog, whose counters are newer and must come second
        # on each channel.
        for router in self.routers:
            replacement.register_router(router.router_id)
        for env in state.pending:
            replacement.on_envelope(env)
        self._wire_joiner(replacement)
        if self.tracer.enabled:
            self.tracer.record(
                SPAN_SCALE, replacement._now, unit_id,
                detail=f"restart:restored={replacement.stats.tuples_restored}")
        return replacement

    def fail_unit(self, unit_id: str) -> Joiner:
        """Crash a joiner unit and restart it immediately.

        Models the microservice failure mode the thesis's architecture
        is designed around: units are independent, subscriptions are
        durable (the group queue buffers while the consumer is down),
        but a crashed unit's *window state is lost*.  Without replay
        recovery the replacement refills organically: pairs whose
        stored half lived only on the crashed unit may be missed for up
        to one window extent — the no-replication trade-off of the
        join-biclique model.  With
        :attr:`BicliqueConfig.replay_recovery` the replacement rebuilds
        that state from the routers' replay log and no results are lost.

        Returns the replacement joiner.
        """
        self.crash_unit(unit_id)
        return self.restart_unit(unit_id)

    def crash_router(self, router_id: str) -> Router:
        """Kill a router pod.

        The router's identity stays registered in every joiner, so the
        watermark simply stalls at its last punctuation until the
        replacement resumes (no envelope is ever released out of
        order).  On a simulated broker its unacknowledged input tuples
        are requeued onto the surviving pool members.
        """
        router = next((r for r in self.routers if r.router_id == router_id),
                      None)
        if router is None:
            raise ScalingError(f"unknown or already-crashed router "
                               f"{router_id!r}")
        self.routers.remove(router)
        # Parked deliveries die with the pod unacked; the broker
        # requeues them for the surviving pool.  The retired flag stops
        # a pending credit wakeup from routing through the corpse.
        router.retired = True
        self._crashed_routers[router_id] = router.next_counter
        entry_queue = f"{ENTRY_DESTINATION}.{ROUTER_GROUP}"
        if self.broker.is_simulated:
            self.broker.crash_consumer(entry_queue, router_id)
        else:
            self.channels.unsubscribe(entry_queue, router_id)
        self.instrumentation.on_router_crashed(router)
        if self.tracer.enabled:
            self.tracer.record(SPAN_SCALE, 0.0, router_id,
                               detail="crash_router")
        return router

    def restart_router(self, router_id: str) -> Router:
        """Attach a replacement router for a crashed one.

        The replacement reuses the crashed router's identity with its
        counter fast-forwarded past everything the dead incarnation
        stamped — per-channel counters stay strictly increasing and the
        joiners' watermark set never changes — *and* past the current
        pool maximum: the survivors kept counting during the outage,
        and a replacement left behind would permanently stamp current
        tuples with counter positions the pool used seconds ago,
        skewing the global (counter, router) order away from event time
        (which Theorem-1 expiry slack is calibrated against).
        """
        try:
            counter = self._crashed_routers.pop(router_id)
        except KeyError:
            raise ScalingError(
                f"router {router_id!r} is not crashed") from None
        pool_floor = max((r.next_counter for r in self.routers), default=0)
        router = self._add_router(router_id,
                                  counter_floor=max(counter, pool_floor))
        self._realign_router_pool()
        if self.tracer.enabled:
            self.tracer.record(SPAN_SCALE, 0.0, router_id,
                               detail="restart_router")
        return router

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def unit_ids(self, side: str | None = None) -> list[str]:
        if side is None:
            return sorted(self.joiners)
        return self.groups[side].all_units()

    def memory_snapshot(self, now: float = 0.0) -> MemorySnapshot:
        return MemorySnapshot(
            time=now,
            per_unit_live_bytes={uid: j.live_bytes
                                 for uid, j in self.joiners.items()})

    def total_stored_tuples(self) -> int:
        return sum(j.stored_tuples for j in self.joiners.values())

    def total_comparisons(self) -> int:
        return sum(j.comparisons for j in self.joiners.values())

    # ------------------------------------------------------------------
    # Metrics export
    # ------------------------------------------------------------------
    def export_metrics(self, registry) -> None:
        """Publish engine, broker, router and joiner metrics.

        Designed as a :class:`~repro.obs.registry.MetricsRegistry`
        collector: register with
        ``registry.register_collector(lambda: engine.export_metrics(registry))``
        and every :meth:`~repro.obs.registry.MetricsRegistry.collect`
        pulls fresh totals from the live components.
        """
        registry.counter("repro_engine_results_total",
                         "Join results produced across all units."
                         ).set_total(self.results_count)
        registry.gauge("repro_engine_joiners",
                       "Live joiner units (both sides)."
                       ).set(len(self.joiners))
        registry.gauge("repro_engine_routers",
                       "Live routers in the competing pool."
                       ).set(len(self.routers))
        registry.gauge("repro_engine_stored_tuples",
                       "Tuples currently held across all window indexes."
                       ).set(self.total_stored_tuples())
        net = self.network_stats
        for kind, count in (("store", net.store_messages),
                            ("join", net.join_messages),
                            ("punctuation", net.punctuation_messages),
                            ("result", net.result_messages)):
            registry.counter("repro_network_messages_total",
                             "Messages sent, by purpose.",
                             {"kind": kind}).set_total(count)
        registry.counter("repro_network_bytes_total",
                         "Bytes sent across all message kinds."
                         ).set_total(net.bytes_sent)
        self.broker.export_metrics(registry)
        if self.overload is not None:
            self.overload.export_metrics(registry)
        for router in self.routers:
            router.export_metrics(registry)
        for joiner in self.joiners.values():
            joiner.export_metrics(registry)
