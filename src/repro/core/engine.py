"""High-level, user-facing stream-join API.

:class:`StreamJoinEngine` is the convenience layer over
:class:`~repro.core.biclique.BicliqueEngine`: give it a configuration,
a predicate and two time-ordered streams and it returns the complete
set of windowed join results plus a run report with throughput, memory
and network statistics.

For simulated-cluster runs with autoscaling (the thesis Figure 20/21
experiments) see :mod:`repro.cluster.runtime`, which drives the same
engine through the discrete-event kernel.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass
from typing import Iterable, Sequence

from ..errors import ReproError
from ..metrics.counters import NetworkStats
from ..metrics.latency import LatencySummary
from ..obs.trace import NOOP_TRACER, NoopTracer
from .biclique import BicliqueConfig, BicliqueEngine
from .predicates import JoinPredicate
from .streams import merge_by_time
from .tuples import JoinResult, StreamTuple


@dataclass(frozen=True)
class RunReport:
    """Summary of one synchronous engine run."""

    tuples_ingested: int
    results: int
    duplicates: int
    wall_seconds: float
    tuples_per_second: float
    network: NetworkStats
    latency: LatencySummary
    comparisons: int
    stored_tuples_final: int
    peak_live_bytes: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RunReport(ingested={self.tuples_ingested}, "
            f"results={self.results}, dup={self.duplicates}, "
            f"throughput={self.tuples_per_second:.0f} t/s, "
            f"msgs={self.network.total_messages})")


class StreamJoinEngine:
    """Synchronous convenience facade over the join-biclique engine."""

    def __init__(self, config: BicliqueConfig, predicate: JoinPredicate,
                 *, tracer: NoopTracer = NOOP_TRACER) -> None:
        self.config = config
        self.predicate = predicate
        self.tracer = tracer
        self.engine = BicliqueEngine(config, predicate, tracer=tracer)
        self._consumed = False

    def run(self, r_stream: Sequence[StreamTuple],
            s_stream: Sequence[StreamTuple],
            *, sample_memory_every: int = 0) -> tuple[list[JoinResult], RunReport]:
        """Join two materialised, time-ordered streams to completion.

        Args:
            r_stream / s_stream: tuples of relations R and S with
                non-decreasing timestamps.
            sample_memory_every: if > 0, sample the total live byte
                footprint every N ingested tuples to report the peak.

        Returns:
            ``(results, report)`` — all join results (exactly once per
            matching pair) and the run statistics.
        """
        return self.run_interleaved(list(merge_by_time(r_stream, s_stream)),
                                    sample_memory_every=sample_memory_every)

    def run_simulated(self, arrivals: Iterable[StreamTuple],
                      duration: float, *, hpa=None, cluster_config=None,
                      rate_fn=None):
        """Run on the simulated cluster (pods, metrics, autoscaling).

        A convenience wrapper over
        :class:`repro.cluster.runtime.SimulatedCluster` for the
        DESIGN.md public-API sketch.  Note this builds a *fresh* engine
        inside the cluster (pods must wrap the joiners from the start);
        the facade's own engine is left untouched.

        Args:
            arrivals: lazy time-ordered tuple sequence.
            duration: simulated seconds to run.
            hpa: optional mapping side → HpaConfig.
            cluster_config: optional ClusterConfig (cost model, specs).
            rate_fn: nominal input rate over time for the timeline.

        Returns:
            ``(cluster, report)`` — the SimulatedCluster (for engine
            inspection) and its ClusterReport.
        """
        from ..cluster.runtime import SimulatedCluster

        cluster = SimulatedCluster(self.config, self.predicate,
                                   cluster_config, hpa=hpa)
        report = cluster.run(iter(arrivals), duration, rate_fn=rate_fn)
        return cluster, report

    def run_interleaved(self, arrivals: Iterable[StreamTuple],
                        *, sample_memory_every: int = 0
                        ) -> tuple[list[JoinResult], RunReport]:
        """Join a single pre-interleaved arrival sequence to completion."""
        if self._consumed:
            raise ReproError(
                "this StreamJoinEngine has already run to completion; "
                "engine state (windows, counters, results) is not "
                "reusable — build a fresh facade per run")
        self._consumed = True
        engine = self.engine
        started = _time.perf_counter()
        ingested = 0
        peak_bytes = 0
        for t in arrivals:
            engine.ingest(t)
            ingested += 1
            if sample_memory_every and ingested % sample_memory_every == 0:
                peak_bytes = max(peak_bytes,
                                 engine.memory_snapshot().total_live_bytes)
        engine.finish()
        wall = _time.perf_counter() - started
        peak_bytes = max(peak_bytes, engine.memory_snapshot().total_live_bytes)

        results = engine.results
        seen = set()
        duplicates = 0
        for result in results:
            if result.key in seen:
                duplicates += 1
            else:
                seen.add(result.key)
        report = RunReport(
            tuples_ingested=ingested,
            results=len(results),
            duplicates=duplicates,
            wall_seconds=wall,
            tuples_per_second=ingested / wall if wall > 0 else 0.0,
            network=engine.network_stats,
            latency=engine.latency.summary(),
            comparisons=engine.total_comparisons(),
            stored_tuples_final=engine.total_stored_tuples(),
            peak_live_bytes=peak_bytes,
        )
        return results, report
