"""The tuple-ordering protocol (thesis §3.3; Definitions 7-8; Figure 8).

Join results are produced exactly once only if, for every joining pair
``(r, s)``, all joiners observe ``r`` and ``s`` in the *same* relative
order (Figure 8 (a)/(b)); cross-channel network reordering otherwise
yields missed results (8 (c)) or duplicates (8 (d)).

The protocol implemented here follows the BiStream construction:

- every tuple is stamped, at its router, with a **monotonically
  increasing counter**; all copies of the tuple (its store message and
  its broadcast join messages) carry the same ``(counter, router_id)``
  stamp, which defines a total *global order* over tuples;
- message passing per ``(router, joiner)`` channel is FIFO
  (Definition 8 — the AMQP per-queue guarantee);
- each router periodically emits a **punctuation** carrying its current
  counter to *all* joiners, promising that no tuple with a smaller
  counter will follow from that router;
- each joiner buffers incoming tuples in a priority queue and releases,
  in global ``(counter, router_id)`` order, exactly those whose counter
  is below the **watermark** — the minimum punctuation received across
  all registered routers.

The released sequence at every joiner is then a subsequence of the
single global sequence *Z* of Definition 7, i.e. the protocol is
order-consistent, and each joinable pair is produced exactly once.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Iterable, Iterator

from ..errors import OrderingError
from .tuples import StreamTuple

#: Envelope kinds moving on router→joiner channels.
KIND_STORE = "store"
KIND_JOIN = "join"
KIND_PUNCTUATION = "punctuation"

#: Wire size charged for a punctuation (counter + router id).
PUNCTUATION_BYTES = 16


@dataclass(frozen=True, slots=True)
class Envelope:
    """A protocol message from a router to a joiner.

    Attributes:
        kind: ``"store"`` (store this tuple), ``"join"`` (probe with
            this tuple) or ``"punctuation"`` (watermark signal).
        router_id: the stamping router.
        counter: the router's counter for this tuple; for punctuations,
            the router's *next* counter (all tuples with smaller
            counters have already been sent).
        tuple: the payload tuple; ``None`` for punctuations.
    """

    kind: str
    router_id: str
    counter: int
    tuple: StreamTuple | None = None

    def size_bytes(self) -> int:
        if self.tuple is None:
            return PUNCTUATION_BYTES
        return PUNCTUATION_BYTES + self.tuple.size_bytes()

    @property
    def order_key(self) -> tuple[int, str]:
        """Position in the global tuple sequence *Z*."""
        return (self.counter, self.router_id)


class ReorderBuffer:
    """Joiner-side buffer enforcing order-consistent release.

    Usage: feed every arriving :class:`Envelope` to :meth:`add`; it
    returns the (possibly empty) list of data envelopes that became
    releasable, already in global order.  Punctuations are absorbed.

    Routers must be registered before their envelopes arrive; the
    watermark is the minimum punctuation over *registered* routers, so
    an unknown router would otherwise silently hold back nothing.

    With ``dedup=True`` a counter regression on a channel is treated as
    a duplicate delivery (at-least-once transport) and silently dropped
    instead of raising — per-router counters are unique, so a repeated
    counter can only be another copy of an already-accepted envelope.
    """

    def __init__(self, *, dedup: bool = False) -> None:
        self._punct: dict[str, int] = {}
        self._last_counter: dict[str, int] = {}
        self._heap: list[tuple[int, str, int, Envelope]] = []
        self._tiebreak = itertools.count()
        self._dedup = dedup
        #: Duplicate data envelopes dropped (``dedup=True`` only).
        self.duplicates_dropped = 0

    # -- router membership ------------------------------------------------
    def register_router(self, router_id: str) -> None:
        self._punct.setdefault(router_id, -1)

    def unregister_router(self, router_id: str) -> list[Envelope]:
        """Remove a router (scale-in); may unblock buffered envelopes."""
        if router_id not in self._punct:
            raise OrderingError(f"router {router_id!r} is not registered")
        del self._punct[router_id]
        self._last_counter.pop(router_id, None)
        return self._release()

    @property
    def registered_routers(self) -> list[str]:
        return sorted(self._punct)

    @property
    def pending(self) -> int:
        """Number of buffered, not-yet-releasable data envelopes."""
        return len(self._heap)

    def watermark(self) -> int:
        """Counters strictly below this value are safe to release."""
        if not self._punct:
            return -1
        return min(self._punct.values())

    # -- protocol input -----------------------------------------------------
    def push(self, envelope: Envelope) -> bool:
        """Accept one envelope *without* releasing.

        Returns ``True`` if the envelope was accepted (buffered, or a
        punctuation absorbed), ``False`` if it was dropped as a
        duplicate (``dedup=True`` only).  Callers batching many pushes
        collect releasable envelopes once via :meth:`release_ready`;
        :meth:`add` is the push-then-release convenience.
        """
        rid = envelope.router_id
        if rid not in self._punct:
            raise OrderingError(
                f"envelope from unregistered router {rid!r}; "
                f"registered: {self.registered_routers}")

        if envelope.kind == KIND_PUNCTUATION:
            previous = self._punct[rid]
            if envelope.counter < previous:
                if self._dedup:
                    self.duplicates_dropped += 1
                    return False
                raise OrderingError(
                    f"punctuation regression from {rid!r}: "
                    f"{envelope.counter} after {previous}")
            self._punct[rid] = envelope.counter
            return True

        # Pairwise FIFO + per-router monotone counters means counters
        # from one router must strictly increase on this channel.
        last = self._last_counter.get(rid, -1)
        if envelope.counter <= last:
            if self._dedup:
                self.duplicates_dropped += 1
                return False
            raise OrderingError(
                f"counter regression on channel from {rid!r}: "
                f"{envelope.counter} after {last} (pairwise FIFO violated?)")
        self._last_counter[rid] = envelope.counter

        heapq.heappush(
            self._heap,
            (envelope.counter, rid, next(self._tiebreak), envelope))
        return True

    def add(self, envelope: Envelope) -> list[Envelope]:
        """Accept an envelope; return newly releasable data envelopes."""
        self.push(envelope)
        return self._release()

    def add_batch(self, envelopes: Iterable[Envelope]) -> list[Envelope]:
        """Accept many envelopes, then release once.

        Element-wise equivalent to calling :meth:`add` per envelope and
        concatenating — a batch arrives on one FIFO channel, so its
        members are in send order and pushing them before a single
        release pass cannot release anything out of global order.
        """
        for envelope in envelopes:
            self.push(envelope)
        return self._release()

    def release_ready(self) -> list[Envelope]:
        """Release everything below the watermark (for :meth:`push` users)."""
        return self._release()

    def _release(self) -> list[Envelope]:
        watermark = self.watermark()
        released: list[Envelope] = []
        while self._heap and self._heap[0][0] < watermark:
            released.append(heapq.heappop(self._heap)[3])
        return released

    def drain(self) -> list[Envelope]:
        """Release everything unconditionally (end-of-stream flush)."""
        released = [heapq.heappop(self._heap)[3] for _ in range(len(self._heap))]
        return released


def interleave_globally(envelopes: Iterator[Envelope]) -> list[Envelope]:
    """Sort data envelopes by global order key (test/diagnostic helper)."""
    data = [e for e in envelopes if e.kind != KIND_PUNCTUATION]
    return sorted(data, key=lambda e: (e.order_key, e.kind))
