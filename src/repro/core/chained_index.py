"""The chained in-memory index (thesis §3.1.2, Figure 5).

Organising a joiner's whole window in one monolithic index makes stale
tuple discarding expensive: every expiry would have to delete tuples
one by one out of the index structure.  The chained index instead
partitions the stored tuples into *sub-indexes* by arrival-time slices
of length ``P`` (the archive period) and chains them in construction
order.  Then:

- **Data indexing** — an arriving tuple goes into the *active*
  sub-index; once the active sub-index's time span exceeds ``P`` it is
  archived onto the chain and a fresh active sub-index is opened.
- **Data discarding (Theorem 1)** — when a probe tuple of the opposite
  relation arrives with timestamp ``t``, every archived sub-index whose
  ``max_ts`` satisfies ``t - max_ts > Ws`` is dropped *as a whole* by
  dereferencing it: O(1) per sub-index instead of O(tuples).
- **Join processing** — the probe is evaluated against the remaining
  sub-indexes (active + archived); per-tuple window checks are only
  needed in the (at most one-``P``-wide) boundary sub-index that
  straddles the window edge, but we apply them to all candidates for
  robustness against out-of-order storage.

Setting ``P`` trades discard granularity against per-probe overhead —
the E5 benchmark sweeps it.  ``archive_period=None`` gives the
monolithic single-index baseline used as E5's ablation control (expiry
then filters tuple-by-tuple, the exact overhead the chained design
avoids).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import chain
from typing import Callable, Iterator

from ..errors import IndexError_
from .indexes import TupleIndex, index_factory, make_probe_plan
from .predicates import JoinPredicate
from .tuples import StreamTuple
from .windows import TimeWindow


@dataclass
class ChainedIndexStats:
    """Operation counters for the chained index (feed E5/E9 benches)."""

    inserts: int = 0
    probes: int = 0
    comparisons: int = 0
    matches: int = 0
    subindexes_created: int = 0
    subindexes_expired: int = 0
    tuples_expired: int = 0
    window_filtered: int = 0


class ChainedInMemoryIndex:
    """A chain of per-time-slice sub-indexes over one relation's tuples.

    Args:
        predicate: the join predicate; selects the sub-index type
            (hash for equi, sorted for band/theta, list otherwise).
        stored_side: ``"R"`` or ``"S"`` — the relation stored here.
        window: the time-based sliding window ``Ws``.
        archive_period: the slice length ``P`` in seconds; ``None``
            disables chaining (single monolithic index, the ablation
            baseline).
    """

    def __init__(self, predicate: JoinPredicate, stored_side: str,
                 window: TimeWindow, archive_period: float | None,
                 expiry_slack: float = 0.0,
                 archive_sink: Callable[[list[StreamTuple]], None] | None = None) -> None:
        if archive_period is not None and archive_period <= 0:
            raise IndexError_(
                f"archive period must be positive, got {archive_period!r}")
        if expiry_slack < 0:
            raise IndexError_(f"expiry slack must be >= 0, got {expiry_slack!r}")
        self.predicate = predicate
        self.stored_side = stored_side
        self.window = window
        self.archive_period = archive_period
        #: Conservative margin subtracted from probe timestamps before
        #: Theorem-1 discarding.  With several routers, tuples ingested
        #: concurrently may be stamped into the global order slightly
        #: out of timestamp order; keeping state for ``slack`` extra
        #: seconds makes discarding safe under that bounded skew while
        #: the per-probe window filter keeps the *results* exact.
        self.expiry_slack = expiry_slack
        #: Optional archive tier hook: called with an expired slice's
        #: tuples instead of silently dereferencing them (enables the
        #: partial-historical queries of :mod:`repro.core.archive`).
        self.archive_sink = archive_sink
        self._new_subindex: Callable[[], TupleIndex] = index_factory(
            predicate, stored_side)
        self._archived: list[TupleIndex] = []
        self._active: TupleIndex = self._new_subindex()
        #: Precompiled probe step: probes always come from the opposite
        #: relation and all sub-indexes share one type, so the equi/band
        #: conjunct and probe-key attribute are resolved once here
        #: instead of per sub-index per probe (the chained probe's
        #: dict-hop hot spot).
        self._probe_plan = make_probe_plan(
            predicate, "S" if stored_side == "R" else "R",
            type(self._active))
        self.stats = ChainedIndexStats()
        self.stats.subindexes_created = 1

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._active) + sum(len(s) for s in self._archived)

    @property
    def bytes(self) -> int:
        """Approximate live-tuple footprint of the whole chain."""
        return self._active.bytes + sum(s.bytes for s in self._archived)

    def export_metrics(self, registry, labels=None) -> None:
        """Publish index counters into a metrics registry."""
        stats = self.stats
        for quantity, value in (("inserts", stats.inserts),
                                ("probes", stats.probes),
                                ("comparisons", stats.comparisons),
                                ("matches", stats.matches),
                                ("subindexes_created",
                                 stats.subindexes_created),
                                ("subindexes_expired",
                                 stats.subindexes_expired),
                                ("tuples_expired", stats.tuples_expired),
                                ("window_filtered", stats.window_filtered)):
            registry.counter(f"repro_index_{quantity}_total",
                             "Chained-index operation counter.",
                             labels).set_total(value)
        registry.gauge("repro_index_subindexes",
                       "Live sub-indexes in the chain.",
                       labels).set(self.subindex_count)

    @property
    def subindex_count(self) -> int:
        """Number of live sub-indexes (archived + the active one)."""
        return len(self._archived) + 1

    def all_tuples(self) -> Iterator[StreamTuple]:
        for sub in self._archived:
            yield from sub.all_tuples()
        yield from self._active.all_tuples()

    # ------------------------------------------------------------------
    # Data indexing (store path)
    # ------------------------------------------------------------------
    def insert(self, t: StreamTuple) -> None:
        """Store a tuple of our own relation (thesis "Data Indexing")."""
        self._active.insert(t)
        self.stats.inserts += 1
        if (self.archive_period is not None
                and self._active.time_span() > self.archive_period):
            self._archived.append(self._active)
            self._active = self._new_subindex()
            self.stats.subindexes_created += 1

    # ------------------------------------------------------------------
    # Data discarding (Theorem 1)
    # ------------------------------------------------------------------
    def expire(self, probe_ts: float) -> int:
        """Drop state that can no longer join with any tuple >= probe_ts.

        Chained mode drops whole sub-indexes whose ``max_ts`` violates
        Theorem 1 (``probe_ts - max_ts > Ws``).  Monolithic mode has to
        rebuild the single index without the expired tuples — the
        expensive per-tuple path the chained design exists to avoid.
        Returns the number of tuples discarded.
        """
        probe_ts -= self.expiry_slack
        if self.archive_period is None:
            return self._expire_monolithic(probe_ts)

        kept: list[TupleIndex] = []
        discarded = 0
        for sub in self._archived:
            if sub.max_ts is not None and self.window.is_expired(
                    sub.max_ts, probe_ts):
                discarded += len(sub)
                self.stats.subindexes_expired += 1
                self._sink(sub)
            else:
                kept.append(sub)
        self._archived = kept
        # The active sub-index can itself be fully stale during an input
        # lull; replace rather than mutate it.
        if (self._active.max_ts is not None
                and self.window.is_expired(self._active.max_ts, probe_ts)):
            discarded += len(self._active)
            self.stats.subindexes_expired += 1
            self._sink(self._active)
            self._active = self._new_subindex()
            self.stats.subindexes_created += 1
        self.stats.tuples_expired += discarded
        return discarded

    def _sink(self, sub: TupleIndex) -> None:
        if self.archive_sink is not None and len(sub):
            self.archive_sink(list(sub.all_tuples()))

    def _expire_monolithic(self, probe_ts: float) -> int:
        if self._active.max_ts is None:
            return 0
        if not self.window.is_expired(
                self._active.min_ts if self._active.min_ts is not None else probe_ts,
                probe_ts):
            return 0  # nothing old enough to bother rebuilding for
        # Partition survivors/expired in a single pass over the index.
        survivors: list[StreamTuple] = []
        expired: list[StreamTuple] = []
        is_expired = self.window.is_expired
        for t in self._active.all_tuples():
            (expired if is_expired(t.ts, probe_ts) else survivors).append(t)
        discarded = len(expired)
        if discarded == 0:
            return 0
        if self.archive_sink is not None:
            self.archive_sink(expired)
        self._active = self._new_subindex()
        self.stats.subindexes_created += 1
        for t in survivors:
            self._active.insert(t)
        self.stats.tuples_expired += discarded
        return discarded

    # ------------------------------------------------------------------
    # Join processing (probe path)
    # ------------------------------------------------------------------
    def probe(self, probe: StreamTuple) -> list[StreamTuple]:
        """Match a probe tuple of the opposite relation.

        Applies (in thesis order) data discarding, then evaluates the
        predicate against all remaining sub-indexes, post-filtering on
        the window so straddling sub-indexes cannot leak stale matches.
        """
        if probe.relation == self.stored_side:
            raise IndexError_(
                f"probe tuple of {probe.relation!r} against an index "
                f"storing the same relation")
        self.expire(probe.ts)
        # Accumulate counters locally; flush the stats object once.
        comparisons = 0
        window_filtered = 0
        probe_ts = probe.ts
        probe_plan = self._probe_plan
        contains = self.window.contains
        results: list[StreamTuple] = []
        scratch: list[StreamTuple] = []
        # Fast path (thesis §3.1.2): the window predicate is an interval
        # in stored-ts, so a sub-index whose min_ts AND max_ts are both
        # in-window holds *only* in-window tuples — probe it straight
        # into the results list, no per-match check.  Only boundary
        # sub-indexes straddling the window edge need per-tuple filtering.
        for sub in chain(self._archived, (self._active,)):
            min_ts = sub.min_ts
            if min_ts is None:  # empty sub-index
                continue
            if contains(min_ts, probe_ts) and contains(sub.max_ts, probe_ts):
                comparisons += probe_plan(sub, probe, results)
            else:
                scratch.clear()
                comparisons += probe_plan(sub, probe, scratch)
                for m in scratch:
                    if contains(m.ts, probe_ts):
                        results.append(m)
                    else:
                        window_filtered += 1
        stats = self.stats
        stats.probes += 1
        stats.comparisons += comparisons
        stats.window_filtered += window_filtered
        stats.matches += len(results)
        return results
