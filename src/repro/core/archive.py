"""Archival of expired sub-indexes (partial-historical state, §2.2).

The sliding window bounds the *online* join state, but §2.2 notes that
systems in this class also serve joins "over full or partial-historical
states of the stream".  The chained in-memory index makes this cheap:
its unit of expiry is a whole sub-index, so instead of dereferencing an
expired slice it can be *shipped to an archive tier* — a disk-backed
store in the real system, simulated here with byte accounting and
simple time-range metadata.

The online hot path is unchanged (archival happens at the O(1) expiry
boundary); the archive answers *offline* historical probes: given a
tuple, scan the archived slices whose time range could contain matches
and evaluate the predicate.  This module provides:

- :class:`ArchivedSlice` — an immutable expired sub-index snapshot,
- :class:`ArchiveStore` — the per-unit archive tier with time-range
  pruning and byte accounting,
- the ``archive_sink`` hook on
  :class:`~repro.core.chained_index.ChainedInMemoryIndex` (see there),
  wired through :class:`~repro.core.joiner.Joiner` by
  ``BicliqueConfig(archive_expired=True)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from ..errors import ConfigurationError
from .predicates import JoinPredicate
from .tuples import StreamTuple


@dataclass(frozen=True)
class ArchivedSlice:
    """One expired sub-index, frozen for the archive tier.

    Attributes:
        unit_id: the joiner unit the slice lived on.
        relation: the stored relation ("R"/"S").
        min_ts / max_ts: time range of the contained tuples.
        tuples: the slice contents, in insertion order.
    """

    unit_id: str
    relation: str
    min_ts: float
    max_ts: float
    tuples: tuple[StreamTuple, ...]

    @property
    def bytes(self) -> int:
        return sum(t.size_bytes() for t in self.tuples)

    def overlaps(self, lo: float, hi: float) -> bool:
        """Does the slice's time range intersect ``[lo, hi]``?"""
        return self.max_ts >= lo and self.min_ts <= hi


class ArchiveStore:
    """An append-only archive of expired sub-index slices.

    Models the disk tier: slices are immutable once written, lookups
    prune by time-range metadata before scanning tuples (the archive
    analogue of the chained index's sub-index-level operations).
    """

    def __init__(self) -> None:
        self._slices: list[ArchivedSlice] = []
        self.bytes_written = 0
        self.slices_written = 0

    def append(self, slice_: ArchivedSlice) -> None:
        if slice_.tuples:
            self._slices.append(slice_)
            self.slices_written += 1
            self.bytes_written += slice_.bytes

    def __len__(self) -> int:
        return len(self._slices)

    @property
    def tuple_count(self) -> int:
        return sum(len(s.tuples) for s in self._slices)

    def slices(self) -> Iterator[ArchivedSlice]:
        return iter(self._slices)

    def export_metrics(self, registry, labels=None) -> None:
        """Publish archive-tier totals into a metrics registry."""
        registry.counter("repro_archive_slices_written_total",
                         "Expired sub-index slices shipped to the archive.",
                         labels).set_total(self.slices_written)
        registry.counter("repro_archive_bytes_written_total",
                         "Bytes written to the archive tier.",
                         labels).set_total(self.bytes_written)
        registry.gauge("repro_archive_tuples",
                       "Tuples retained across all archived slices.",
                       labels).set(self.tuple_count)

    # ------------------------------------------------------------------
    # Historical queries
    # ------------------------------------------------------------------
    def probe(self, predicate: JoinPredicate, probe: StreamTuple, *,
              lo: float = float("-inf"),
              hi: float = float("inf")) -> list[StreamTuple]:
        """All archived tuples matching ``predicate`` against ``probe``
        whose timestamps fall in ``[lo, hi]``.

        Time-range pruning skips whole slices, mirroring how the real
        system would avoid reading irrelevant archive files.
        """
        matches: list[StreamTuple] = []
        for slice_ in self._slices:
            if not slice_.overlaps(lo, hi):
                continue
            for stored in slice_.tuples:
                if not lo <= stored.ts <= hi:
                    continue
                if probe.relation == "R":
                    ok = predicate.matches(probe, stored)
                else:
                    ok = predicate.matches(stored, probe)
                if ok:
                    matches.append(stored)
        return matches


@dataclass
class HistoricalQueryResult:
    """Outcome of an engine-level historical probe."""

    probe: StreamTuple
    live_matches: list[StreamTuple] = field(default_factory=list)
    archived_matches: list[StreamTuple] = field(default_factory=list)

    @property
    def all_matches(self) -> list[StreamTuple]:
        return self.archived_matches + self.live_matches


def query_history(engine, probe: StreamTuple, *,
                  lo: float = float("-inf"),
                  hi: float = float("inf")) -> HistoricalQueryResult:
    """Probe a biclique engine's live + archived state of the opposite
    relation (an offline, best-effort historical join).

    Requires the engine to have been built with
    ``BicliqueConfig(archive_expired=True)``.

    Note this is an *offline* facility: it scans state directly rather
    than flowing through the ordering protocol, so it reflects whatever
    has been stored/archived at call time.
    """
    if not getattr(engine.config, "archive_expired", False):
        raise ConfigurationError(
            "historical queries need BicliqueConfig(archive_expired=True)")
    stored_side = "S" if probe.relation == "R" else "R"
    result = HistoricalQueryResult(probe=probe)
    seen: set[tuple[str, int]] = set()
    for joiner in engine.joiners.values():
        if joiner.side != stored_side:
            continue
        for stored in joiner.index.all_tuples():
            if not lo <= stored.ts <= hi:
                continue
            if stored.ident in seen:
                continue
            if probe.relation == "R":
                ok = engine.predicate.matches(probe, stored)
            else:
                ok = engine.predicate.matches(stored, probe)
            if ok:
                seen.add(stored.ident)
                result.live_matches.append(stored)
        if joiner.archive is not None:
            for stored in joiner.archive.probe(engine.predicate, probe,
                                               lo=lo, hi=hi):
                if stored.ident not in seen:
                    seen.add(stored.ident)
                    result.archived_matches.append(stored)
    return result
