"""In-memory join indexes (thesis §3.1.2).

Joiner units keep the stored tuples of their own relation in an index
chosen by the join predicate:

- :class:`HashIndex` for equi-joins (a hash map on the join attribute),
- :class:`SortedIndex` for band/theta joins (a sorted array probed with
  binary search; the thesis uses a binary search tree — a sorted array
  with ``bisect`` offers the same O(log n + k) probes with better
  constants in Python),
- :class:`BruteForceIndex` for arbitrary predicates (linear scan).

Each index reports the number of *tuple comparisons* a probe performed,
which feeds the CPU cost model and the E9 routing-strategy benchmark,
and its approximate byte footprint for the memory experiments.

Indexes never apply the window predicate themselves — window filtering
and Theorem 1 expiry live one level up, in
:class:`~repro.core.chained_index.ChainedInMemoryIndex` — but probes
return ``(candidates, comparisons)`` so the caller can post-filter.
"""

from __future__ import annotations

import bisect
from typing import Iterator

from ..errors import IndexError_
from .predicates import (
    BandJoinPredicate,
    ConjunctionPredicate,
    CrossPredicate,
    EquiJoinPredicate,
    JoinPredicate,
    ThetaJoinPredicate,
)
from .tuples import StreamTuple

#: Approximate per-entry bookkeeping overhead charged by every index.
ENTRY_OVERHEAD_BYTES = 16


class TupleIndex:
    """Base class for the per-sub-index tuple stores.

    Subclasses implement :meth:`insert` and :meth:`probe`.  The base
    class tracks size, byte footprint and the min/max timestamps that
    the chained index needs for archive/expiry decisions.
    """

    def __init__(self, stored_side: str, key_attr: str | None) -> None:
        #: "R" or "S": which relation's tuples this index stores.
        self.stored_side = stored_side
        self.key_attr = key_attr
        self.min_ts: float | None = None
        self.max_ts: float | None = None
        self._count = 0
        self._bytes = 0

    # -- bookkeeping ----------------------------------------------------
    def __len__(self) -> int:
        return self._count

    @property
    def bytes(self) -> int:
        """Approximate in-memory footprint of the stored tuples."""
        return self._bytes

    def _account_insert(self, t: StreamTuple) -> None:
        if t.relation != self.stored_side:
            raise IndexError_(
                f"index stores relation {self.stored_side!r}, "
                f"got tuple of {t.relation!r}")
        self._count += 1
        self._bytes += t.size_bytes() + ENTRY_OVERHEAD_BYTES
        if self.min_ts is None or t.ts < self.min_ts:
            self.min_ts = t.ts
        if self.max_ts is None or t.ts > self.max_ts:
            self.max_ts = t.ts

    def time_span(self) -> float:
        """``max_ts - min_ts`` of the stored tuples (0 when empty)."""
        if self.min_ts is None or self.max_ts is None:
            return 0.0
        return self.max_ts - self.min_ts

    # -- interface -------------------------------------------------------
    def insert(self, t: StreamTuple) -> None:
        raise NotImplementedError

    def probe(self, predicate: JoinPredicate,
              probe: StreamTuple) -> tuple[list[StreamTuple], int]:
        """Return ``(matching stored tuples, comparisons performed)``.

        ``probe`` is a tuple of the *opposite* relation.  The returned
        tuples satisfy the full join predicate (but not necessarily the
        window — the caller filters on time).  Convenience wrapper over
        :meth:`probe_into`.
        """
        matches: list[StreamTuple] = []
        comparisons = self.probe_into(predicate, probe, matches)
        return matches, comparisons

    def probe_into(self, predicate: JoinPredicate, probe: StreamTuple,
                   out: list[StreamTuple]) -> int:
        """Append matching stored tuples to ``out``; return comparisons.

        The allocation-free probe primitive: the chained index passes
        one results list down the whole sub-index chain instead of
        concatenating a fresh list per sub-index.
        """
        raise NotImplementedError

    def all_tuples(self) -> Iterator[StreamTuple]:
        raise NotImplementedError

    # -- predicate normalisation ------------------------------------------
    def _ordered(self, predicate: JoinPredicate, probe: StreamTuple,
                 stored: StreamTuple) -> bool:
        """Evaluate ``predicate`` with (r, s) operands in the right order."""
        if probe.relation == "R":
            return predicate.matches(probe, stored)
        return predicate.matches(stored, probe)


class BruteForceIndex(TupleIndex):
    """A plain list; probes scan every stored tuple."""

    def __init__(self, stored_side: str, key_attr: str | None = None) -> None:
        super().__init__(stored_side, key_attr)
        self._tuples: list[StreamTuple] = []

    def insert(self, t: StreamTuple) -> None:
        self._account_insert(t)
        self._tuples.append(t)

    def probe_into(self, predicate: JoinPredicate, probe: StreamTuple,
                   out: list[StreamTuple]) -> int:
        # Hoist the operand-order branch out of the scan loop.
        matches = predicate.matches
        if probe.relation == "R":
            out.extend(t for t in self._tuples if matches(probe, t))
        else:
            out.extend(t for t in self._tuples if matches(t, probe))
        return len(self._tuples)

    def all_tuples(self) -> Iterator[StreamTuple]:
        return iter(self._tuples)


class HashIndex(TupleIndex):
    """A hash map on the join attribute, for equi-join probing.

    A probe hashes the probe tuple's key value and compares only the
    colliding bucket.  Non-equi predicates fall back to a full scan so
    that a :class:`ConjunctionPredicate` with residual conjuncts can
    still be evaluated correctly.
    """

    def __init__(self, stored_side: str, key_attr: str) -> None:
        if key_attr is None:
            raise IndexError_("HashIndex requires a key attribute")
        super().__init__(stored_side, key_attr)
        self._buckets: dict[object, list[StreamTuple]] = {}

    def insert(self, t: StreamTuple) -> None:
        self._account_insert(t)
        self._buckets.setdefault(t[self.key_attr], []).append(t)

    def probe_into(self, predicate: JoinPredicate, probe: StreamTuple,
                   out: list[StreamTuple]) -> int:
        probe_is_r = probe.relation == "R"
        matches = predicate.matches
        equi = _equi_conjunct(predicate)
        if equi is None:
            # Correctness fallback: scan everything.
            comparisons = 0
            for bucket in self._buckets.values():
                comparisons += len(bucket)
                if probe_is_r:
                    out.extend(t for t in bucket if matches(probe, t))
                else:
                    out.extend(t for t in bucket if matches(t, probe))
            return comparisons
        probe_attr = equi.key_attribute(probe.relation)
        bucket = self._buckets.get(probe[probe_attr])
        if not bucket:
            return 0
        if probe_is_r:
            out.extend(t for t in bucket if matches(probe, t))
        else:
            out.extend(t for t in bucket if matches(t, probe))
        return len(bucket)

    def all_tuples(self) -> Iterator[StreamTuple]:
        for bucket in self._buckets.values():
            yield from bucket


class SortedIndex(TupleIndex):
    """A sorted array on a numeric join attribute for range probing.

    Supports :class:`BandJoinPredicate` (closed range around the probe
    value) and the ordered :class:`ThetaJoinPredicate` operators
    (half-open ranges); everything else falls back to a full scan.
    """

    def __init__(self, stored_side: str, key_attr: str) -> None:
        if key_attr is None:
            raise IndexError_("SortedIndex requires a key attribute")
        super().__init__(stored_side, key_attr)
        self._keys: list[float] = []
        self._tuples: list[StreamTuple] = []

    def insert(self, t: StreamTuple) -> None:
        self._account_insert(t)
        key = t[self.key_attr]
        pos = bisect.bisect_right(self._keys, key)
        self._keys.insert(pos, key)
        self._tuples.insert(pos, t)

    # -- range helpers -----------------------------------------------------
    def _slice(self, lo: float | None, hi: float | None,
               lo_open: bool = False, hi_open: bool = False) -> list[StreamTuple]:
        start = 0
        end = len(self._keys)
        if lo is not None:
            start = (bisect.bisect_right(self._keys, lo) if lo_open
                     else bisect.bisect_left(self._keys, lo))
        if hi is not None:
            end = (bisect.bisect_left(self._keys, hi) if hi_open
                   else bisect.bisect_right(self._keys, hi))
        return self._tuples[start:end]

    def probe_into(self, predicate: JoinPredicate, probe: StreamTuple,
                   out: list[StreamTuple]) -> int:
        indexable = predicate
        if isinstance(predicate, ConjunctionPredicate):
            indexable = predicate.indexable_conjunct

        candidates = self._candidates(indexable, probe)
        if candidates is None:  # unsupported shape: full scan
            candidates = self._tuples
        matches = predicate.matches
        if probe.relation == "R":
            out.extend(t for t in candidates if matches(probe, t))
        else:
            out.extend(t for t in candidates if matches(t, probe))
        return len(candidates)

    def _candidates(self, indexable: JoinPredicate,
                    probe: StreamTuple) -> list[StreamTuple] | None:
        """Range-scan candidates for the indexable conjunct, or ``None``."""
        if isinstance(indexable, BandJoinPredicate):
            value = probe[indexable.key_attribute(probe.relation)]
            # Widen the candidate range by a relative pad: the predicate
            # evaluates fl(|a - b|) <= band, whose rounding can accept
            # values a few ulps outside the exact [v-band, v+band].  The
            # pad keeps the range scan a superset of the predicate; the
            # exact predicate check filters afterwards.
            pad = (abs(value) + indexable.band) * 1e-12
            return self._slice(value - indexable.band - pad,
                               value + indexable.band + pad)
        if isinstance(indexable, EquiJoinPredicate):
            value = probe[indexable.key_attribute(probe.relation)]
            return self._slice(value, value)
        if isinstance(indexable, ThetaJoinPredicate) and indexable.op != "!=":
            return self._theta_candidates(indexable, probe)
        return None

    def _theta_candidates(self, pred: ThetaJoinPredicate,
                          probe: StreamTuple) -> list[StreamTuple]:
        value = probe[pred.key_attribute(probe.relation)]
        op = pred.op
        if op == "==":
            return self._slice(value, value)
        # The predicate is written R.a <op> S.b.  When the probe comes
        # from R we scan stored S values satisfying  value <op> s;
        # when it comes from S we need stored R values r with r <op> value.
        probe_is_r = probe.relation == "R"
        if op in ("<", "<="):
            open_end = op == "<"
            if probe_is_r:   # stored s > value  (or >=)
                return self._slice(value, None, lo_open=open_end)
            return self._slice(None, value, hi_open=open_end)  # stored r < value
        if op in (">", ">="):
            open_end = op == ">"
            if probe_is_r:   # stored s < value  (or <=)
                return self._slice(None, value, hi_open=open_end)
            return self._slice(value, None, lo_open=open_end)  # stored r > value
        raise IndexError_(f"unsupported theta op {op!r}")  # pragma: no cover

    def all_tuples(self) -> Iterator[StreamTuple]:
        return iter(self._tuples)


def _equi_conjunct(predicate: JoinPredicate) -> EquiJoinPredicate | None:
    """The equi-join (sub-)predicate usable for hash probing, if any."""
    if isinstance(predicate, EquiJoinPredicate):
        return predicate
    if isinstance(predicate, ConjunctionPredicate):
        indexable = predicate.indexable_conjunct
        if isinstance(indexable, EquiJoinPredicate):
            return indexable
    return None


def make_probe_plan(predicate: JoinPredicate, probe_side: str,
                    index_type: type):
    """Precompile the per-sub-index probe step of a chained index.

    ``probe_into`` re-derives per call what is constant for a chained
    index's whole lifetime: which side the probe comes from, the equi/
    indexable conjunct, the probe-key attribute.  A chained probe pays
    that per *sub-index*, so the dict hops dominate once probing itself
    is cheap (the multicore-CPU paper's observation).  This returns a
    closure ``plan(sub, probe, out) -> comparisons`` with all of it
    resolved up front, for the two hot index shapes:

    - :class:`HashIndex` with an equi conjunct — direct bucket lookup;
    - :class:`SortedIndex` with a band conjunct — direct range slice;

    anything else falls back to the sub-index's own ``probe_into``.
    Every path reports *exactly* the comparisons the generic one would
    (bucket/candidate lengths), so index counters stay byte-identical.
    """
    matches = predicate.matches
    probe_is_r = probe_side == "R"

    if index_type is HashIndex:
        equi = _equi_conjunct(predicate)
        if equi is not None:
            probe_attr = equi.key_attribute(probe_side)
            if probe_is_r:
                def plan(sub, probe, out):
                    bucket = sub._buckets.get(probe[probe_attr])
                    if not bucket:
                        return 0
                    out.extend(t for t in bucket if matches(probe, t))
                    return len(bucket)
            else:
                def plan(sub, probe, out):
                    bucket = sub._buckets.get(probe[probe_attr])
                    if not bucket:
                        return 0
                    out.extend(t for t in bucket if matches(t, probe))
                    return len(bucket)
            return plan

    if index_type is SortedIndex:
        indexable = predicate
        if isinstance(predicate, ConjunctionPredicate):
            indexable = predicate.indexable_conjunct
        if isinstance(indexable, BandJoinPredicate):
            probe_attr = indexable.key_attribute(probe_side)
            band = indexable.band
            if probe_is_r:
                def plan(sub, probe, out):
                    value = probe[probe_attr]
                    # Same relative pad as SortedIndex._candidates: keep
                    # the range scan a superset under float rounding.
                    pad = (abs(value) + band) * 1e-12
                    candidates = sub._slice(value - band - pad,
                                            value + band + pad)
                    out.extend(t for t in candidates if matches(probe, t))
                    return len(candidates)
            else:
                def plan(sub, probe, out):
                    value = probe[probe_attr]
                    pad = (abs(value) + band) * 1e-12
                    candidates = sub._slice(value - band - pad,
                                            value + band + pad)
                    out.extend(t for t in candidates if matches(t, probe))
                    return len(candidates)
            return plan

    def plan(sub, probe, out):
        return sub.probe_into(predicate, probe, out)
    return plan


def index_factory(predicate: JoinPredicate, stored_side: str):
    """Return a zero-argument constructor for the right index type.

    Selection rule (thesis §3.1.2: "HashMap for equi-join and a
    BinarySearchTree for non-equi-join predicates"):

    - equi-join (or conjunction containing one) → :class:`HashIndex`,
    - band/ordered-theta on a single attribute → :class:`SortedIndex`,
    - anything else → :class:`BruteForceIndex`.
    """
    if _equi_conjunct(predicate) is not None:
        key = _equi_conjunct(predicate).key_attribute(stored_side)
        return lambda: HashIndex(stored_side, key)

    indexable = predicate
    if isinstance(predicate, ConjunctionPredicate):
        indexable = predicate.indexable_conjunct
    if isinstance(indexable, (BandJoinPredicate, ThetaJoinPredicate)):
        key = indexable.key_attribute(stored_side)
        return lambda: SortedIndex(stored_side, key)
    if isinstance(indexable, CrossPredicate):
        return lambda: BruteForceIndex(stored_side)
    return lambda: BruteForceIndex(stored_side)
