"""Deployment planning: closed-form costs for the routing choices.

The thesis §2.4.1 compares per-tuple fan-outs analytically (biclique
``p/2`` vs matrix ``√p``); the subgroup knob interpolates between the
extremes.  This module packages those closed forms so an operator can
*plan* a deployment — pick the routing strategy and subgroup count for
a given predicate, unit count and memory budget — and so benchmarks
(E7) can check measurements against predictions.

For a symmetric deployment with ``m`` units per side and ``k``
subgroups per side, ContRand costs per tuple:

- ``k`` store messages (one replica per subgroup of the own side),
- ``m / k`` join messages (all units of one opposite subgroup),

so ``messages(k) = k + m/k``, minimised at ``k ≈ √m`` where it equals
``2√m`` — within a factor ``√2`` of the matrix's ``√(2m)`` fan-out
while keeping the biclique's migration-free elasticity.  The price is
a replication factor of ``k``.  ContHash, when the predicate allows
it, beats both with a constant 2.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import ConfigurationError
from .predicates import JoinPredicate


def contrand_messages_per_tuple(units_per_side: int, subgroups: int = 1) -> float:
    """Per-tuple fan-out of ContRand with ``subgroups`` per side."""
    if units_per_side < 1:
        raise ConfigurationError("units_per_side must be >= 1")
    if not 1 <= subgroups <= units_per_side:
        raise ConfigurationError(
            f"subgroups must be in [1, {units_per_side}], got {subgroups}")
    return subgroups + units_per_side / subgroups


def conthash_messages_per_tuple() -> float:
    """Per-tuple fan-out of ContHash (1 store + 1 probe)."""
    return 2.0


def matrix_messages_per_tuple(total_units: int) -> float:
    """Per-tuple fan-out of a square join-matrix over ``total_units``."""
    if total_units < 1:
        raise ConfigurationError("total_units must be >= 1")
    return math.sqrt(total_units)


def contrand_replication_factor(subgroups: int) -> int:
    """Stored copies per tuple under ContRand subgrouping."""
    return subgroups


def optimal_contrand_subgroups(units_per_side: int,
                               max_replication: int | None = None) -> int:
    """The subgroup count minimising ContRand fan-out.

    Args:
        units_per_side: m, the units on each side.
        max_replication: optional memory budget — the replication
            factor (= subgroup count) may not exceed it.

    Returns:
        the integer k in ``[1, min(m, max_replication)]`` minimising
        ``k + m/k`` (ties resolved towards fewer replicas).
    """
    if units_per_side < 1:
        raise ConfigurationError("units_per_side must be >= 1")
    ceiling = units_per_side
    if max_replication is not None:
        if max_replication < 1:
            raise ConfigurationError("max_replication must be >= 1")
        ceiling = min(ceiling, max_replication)
    best = min(range(1, ceiling + 1),
               key=lambda k: (contrand_messages_per_tuple(units_per_side, k),
                              k))
    return best


@dataclass(frozen=True)
class DeploymentPlan:
    """A recommended biclique configuration with predicted costs."""

    routing: str                 # "hash" or "random"
    subgroups: int               # per side (1 when routing == "hash")
    messages_per_tuple: float
    replication_factor: int
    matrix_messages_per_tuple: float  # the baseline, for comparison

    @property
    def beats_matrix_fanout(self) -> bool:
        return self.messages_per_tuple <= self.matrix_messages_per_tuple


def plan_deployment(predicate: JoinPredicate, units_per_side: int, *,
                    max_replication: int = 1) -> DeploymentPlan:
    """Recommend routing + subgrouping for a predicate and unit count.

    Follows §3.2: ContHash whenever the predicate has an equi-join
    conjunct (fan-out 2, no replication); otherwise ContRand with the
    fan-out-optimal subgroup count within the replication budget.
    """
    from .routing import _has_equi_conjunct

    matrix_msgs = matrix_messages_per_tuple(2 * units_per_side)
    if _has_equi_conjunct(predicate):
        return DeploymentPlan(
            routing="hash", subgroups=1,
            messages_per_tuple=conthash_messages_per_tuple(),
            replication_factor=1,
            matrix_messages_per_tuple=matrix_msgs)
    k = optimal_contrand_subgroups(units_per_side,
                                   max_replication=max_replication)
    return DeploymentPlan(
        routing="random", subgroups=k,
        messages_per_tuple=contrand_messages_per_tuple(units_per_side, k),
        replication_factor=k,
        matrix_messages_per_tuple=matrix_msgs)
