"""The join-biclique stream-join core (the paper's contribution).

Modules, bottom-up:

- :mod:`~repro.core.tuples` / :mod:`~repro.core.streams` — data model,
- :mod:`~repro.core.windows` — sliding-window semantics,
- :mod:`~repro.core.predicates` — equi/band/theta join predicates,
- :mod:`~repro.core.indexes` — hash / sorted / scan sub-indexes,
- :mod:`~repro.core.chained_index` — the chained in-memory index with
  archive period P and Theorem-1 discarding,
- :mod:`~repro.core.ordering` — the order-consistent tuple protocol,
- :mod:`~repro.core.routing` — ContRand / ContHash strategies, groups,
  subgroups and no-migration scaling epochs,
- :mod:`~repro.core.router` / :mod:`~repro.core.joiner` — the two
  microservice roles,
- :mod:`~repro.core.recovery` — window-replay crash recovery,
- :mod:`~repro.core.biclique` — topology wiring, elastic scaling and
  crash/restart fault injection,
- :mod:`~repro.core.engine` — the user-facing synchronous facade.
"""

from .archive import ArchivedSlice, ArchiveStore, HistoricalQueryResult, query_history
from .batching import BatchingConfig, EnvelopeBatch
from .biclique import BicliqueConfig, BicliqueEngine
from .chained_index import ChainedInMemoryIndex
from .engine import RunReport, StreamJoinEngine
from .joiner import Joiner
from .multiway import CascadeJoin, CascadeReport, CascadeResult, reference_cascade
from .pipeline import (
    CascadePipeline,
    PipelineReport,
    PipelineResult,
    PipelineStage,
    reference_pipeline,
)
from .ordering import Envelope, ReorderBuffer
from .planning import (
    DeploymentPlan,
    contrand_messages_per_tuple,
    conthash_messages_per_tuple,
    matrix_messages_per_tuple,
    optimal_contrand_subgroups,
    plan_deployment,
)
from .recovery import ReplayBuffer, ReplayLog
from .predicates import (
    BandJoinPredicate,
    ConjunctionPredicate,
    CrossPredicate,
    EquiJoinPredicate,
    ExpensivePredicate,
    JoinPredicate,
    ThetaJoinPredicate,
)
from .router import Router
from .routing import HashRouting, JoinerGroup, RandomRouting
from .streams import StreamSource, merge_by_time, stream_from_pairs
from .tuples import Attribute, JoinResult, Schema, StreamTuple, make_result
from .windows import CountWindow, FullHistoryWindow, TimeWindow

__all__ = [
    "ArchivedSlice",
    "ArchiveStore",
    "HistoricalQueryResult",
    "query_history",
    "BatchingConfig",
    "EnvelopeBatch",
    "BicliqueConfig",
    "BicliqueEngine",
    "ChainedInMemoryIndex",
    "RunReport",
    "StreamJoinEngine",
    "Joiner",
    "CascadeJoin",
    "CascadeReport",
    "CascadeResult",
    "reference_cascade",
    "CascadePipeline",
    "PipelineReport",
    "PipelineResult",
    "PipelineStage",
    "reference_pipeline",
    "Envelope",
    "DeploymentPlan",
    "contrand_messages_per_tuple",
    "conthash_messages_per_tuple",
    "matrix_messages_per_tuple",
    "optimal_contrand_subgroups",
    "plan_deployment",
    "ReorderBuffer",
    "ReplayBuffer",
    "ReplayLog",
    "BandJoinPredicate",
    "ConjunctionPredicate",
    "CrossPredicate",
    "EquiJoinPredicate",
    "ExpensivePredicate",
    "JoinPredicate",
    "ThetaJoinPredicate",
    "Router",
    "HashRouting",
    "JoinerGroup",
    "RandomRouting",
    "StreamSource",
    "merge_by_time",
    "stream_from_pairs",
    "Attribute",
    "JoinResult",
    "Schema",
    "StreamTuple",
    "make_result",
    "CountWindow",
    "FullHistoryWindow",
    "TimeWindow",
]
