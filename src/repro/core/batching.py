"""Micro-batching of the router→joiner data plane.

Every data envelope normally costs one broker delivery: one kernel
event, one ack cycle, one credit round-trip.  With thousands of tuples
per second the *fixed* per-delivery overhead — not the join work —
dominates wall-clock time.  Micro-batching amortises it: a router
coalesces consecutive envelopes bound for the same joiner into one
:class:`EnvelopeBatch` and ships the batch as a single message.  The
joiner unpacks it in order, so the ordering protocol (per-router
monotone counters + punctuation watermarks) observes exactly the same
envelope sequence per channel and the released global order — and with
it every join result — is byte-identical to the unbatched run.

Batching is a pure transport concern by design:

- **punctuations are never batched** — a punctuation promises that no
  smaller counter will follow, so every buffered envelope must be
  flushed *before* the punctuation is sent;
- **overload accounting counts tuples, not batches** — queue depths and
  credits are weighted by :attr:`EnvelopeBatch.tuple_count`, so bounds
  expressed in tuples keep their meaning;
- **byte accounting is additive** — a batch charges one message
  overhead plus the sum of its envelopes' sizes, modelling one frame
  carrying many logical messages.

The same amortisation underlies index-based stream-join engines (e.g.
Shahvarani & Jacobsen's amortised batch probes); here it applies one
layer down, to the transport itself.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator

from ..errors import ConfigurationError
from .ordering import KIND_PUNCTUATION, Envelope


@dataclass(frozen=True)
class BatchingConfig:
    """Transport batching knobs.

    Attributes:
        batch_size: flush the router's buffers once this many tuples
            have been routed since the last flush (each buffered target
            then ships one batch).  ``1`` (the default) disables
            batching — every envelope ships individually, the seed
            behaviour.
        batch_linger: maximum simulated seconds an envelope may sit in
            a router buffer before a time-based flush.  ``0`` disables
            the linger timer; buffers then flush only on size or on
            punctuation, which bounds latency by the punctuation
            interval.
    """

    batch_size: int = 1
    batch_linger: float = 0.0

    def __post_init__(self) -> None:
        if self.batch_size < 1:
            raise ConfigurationError(
                f"batch_size must be >= 1, got {self.batch_size!r}")
        if self.batch_linger < 0:
            raise ConfigurationError(
                f"batch_linger must be >= 0, got {self.batch_linger!r}")

    @property
    def enabled(self) -> bool:
        """Whether the config actually batches anything."""
        return self.batch_size > 1


@dataclass(frozen=True, slots=True)
class EnvelopeBatch:
    """One transport frame carrying several data envelopes, in order.

    The envelopes share a sender (one router) and a destination (one
    joiner inbox) and appear in send order, so unpacking the batch
    element-wise reproduces the unbatched per-channel FIFO sequence
    exactly.  Punctuations are never batched (see module docstring).
    """

    envelopes: tuple[Envelope, ...]

    def __post_init__(self) -> None:
        if not self.envelopes:
            raise ConfigurationError("an EnvelopeBatch cannot be empty")
        for env in self.envelopes:
            if env.kind == KIND_PUNCTUATION:
                raise ConfigurationError(
                    "punctuations must not be batched; flush the buffer "
                    "and send them individually")

    def __iter__(self) -> Iterator[Envelope]:
        return iter(self.envelopes)

    def __len__(self) -> int:
        return len(self.envelopes)

    @property
    def tuple_count(self) -> int:
        """Logical tuples carried — the unit of depth/credit accounting."""
        return len(self.envelopes)

    def size_bytes(self) -> int:
        """One frame: the envelopes' bytes ride under one message overhead."""
        return sum(env.size_bytes() for env in self.envelopes)


def payload_tuple_count(payload: Any) -> int:
    """Logical tuple weight of any broker payload (1 unless a batch)."""
    count = getattr(payload, "tuple_count", None)
    return count if isinstance(count, int) else 1


def iter_envelopes(payload: Any) -> Iterator[Envelope]:
    """Iterate the envelopes of a payload: a batch yields its members,
    a bare :class:`Envelope` yields itself, anything else nothing."""
    if isinstance(payload, EnvelopeBatch):
        return iter(payload.envelopes)
    if isinstance(payload, Envelope):
        return iter((payload,))
    return iter(())
