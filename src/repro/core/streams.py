"""Logical data streams (Definition 3) and stream utilities.

A stream is modelled as an iterable of :class:`StreamTuple` with
non-decreasing source timestamps.  :class:`StreamSource` wraps raw
attribute dictionaries into well-formed tuples (assigning sequence
numbers and validating against a schema), and :func:`merge_by_time`
produces the single interleaved arrival order in which two streams
enter the system — the "global" order that the ordering protocol must
preserve at every joiner.
"""

from __future__ import annotations

import heapq
from typing import Any, Iterable, Iterator, Mapping, Sequence

from ..errors import SchemaError
from .tuples import Schema, StreamTuple


class StreamSource:
    """A validating factory for tuples of one logical stream.

    Example:
        >>> from repro.core.tuples import Attribute
        >>> schema = Schema("R", [Attribute("k"), Attribute("v")])
        >>> src = StreamSource("R", schema)
        >>> t = src.emit(1.5, {"k": 7, "v": "x"})
        >>> t.relation, t.seq
        ('R', 0)
    """

    def __init__(self, relation: str, schema: Schema | None = None) -> None:
        self.relation = relation
        self.schema = schema
        self._next_seq = 0
        self._last_ts: float | None = None

    @property
    def emitted(self) -> int:
        """Number of tuples emitted so far."""
        return self._next_seq

    def emit(self, ts: float, values: Mapping[str, Any]) -> StreamTuple:
        """Create the next tuple of the stream.

        Raises:
            SchemaError: if the values do not instantiate the schema or
                the timestamp regresses (streams are ordered by *T*).
        """
        if self._last_ts is not None and ts < self._last_ts:
            raise SchemaError(
                f"stream {self.relation!r} timestamps must be non-decreasing: "
                f"{ts!r} after {self._last_ts!r}"
            )
        if self.schema is not None:
            self.schema.validate(values)
        t = StreamTuple(relation=self.relation, ts=ts, values=dict(values),
                        seq=self._next_seq)
        self._next_seq += 1
        self._last_ts = ts
        return t


def stream_from_pairs(relation: str,
                      pairs: Iterable[tuple[float, Mapping[str, Any]]],
                      schema: Schema | None = None) -> list[StreamTuple]:
    """Build a materialised stream from ``(ts, values)`` pairs."""
    source = StreamSource(relation, schema)
    return [source.emit(ts, values) for ts, values in pairs]


def merge_by_time(*streams: Sequence[StreamTuple]) -> Iterator[StreamTuple]:
    """Interleave several time-ordered streams into one arrival order.

    Ties on timestamp are broken by ``(relation, seq)`` so that the
    merge is deterministic.  This is the order in which tuples reach the
    system's entry exchange in a single-source deployment.
    """
    def sort_key(t: StreamTuple) -> tuple[float, str, int]:
        return (t.ts, t.relation, t.seq)

    return iter(heapq.merge(*streams, key=sort_key))


def check_time_ordered(stream: Iterable[StreamTuple]) -> None:
    """Assert that a stream's timestamps are non-decreasing.

    Raises:
        SchemaError: on the first regression found.
    """
    last: float | None = None
    for t in stream:
        if last is not None and t.ts < last:
            raise SchemaError(
                f"stream not time-ordered: tuple {t!r} after ts={last!r}")
        last = t.ts
