"""Streaming tuples, schemas and the time domain (Definitions 1-3).

A :class:`Schema` is an ordered set of named, typed attributes; a
:class:`StreamTuple` is an instance of a schema carrying a timestamp
from the (discrete, ordered) time domain.  Tuples are immutable — once
emitted into the system they flow by value through routers, the broker
and joiners, exactly as serialized messages would in the real system.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass
from typing import Any, Iterable, Mapping

from ..errors import SchemaError

#: Approximate fixed per-tuple overhead, in bytes, charged by the memory
#: accounting model on top of the attribute payload (object headers,
#: timestamps, relation tag).  The absolute value only shifts curves; the
#: *shapes* of the memory experiments depend on live tuple counts.
TUPLE_OVERHEAD_BYTES = 48


@dataclass(frozen=True)
class Attribute:
    """A single named, typed attribute of a tuple schema."""

    name: str
    dtype: type = object

    def validate(self, value: Any) -> None:
        """Raise :class:`~repro.errors.SchemaError` on a type mismatch."""
        if self.dtype is object:
            return
        if not isinstance(value, self.dtype):
            raise SchemaError(
                f"attribute {self.name!r} expects {self.dtype.__name__}, "
                f"got {type(value).__name__} ({value!r})"
            )


class Schema:
    """An ordered tuple schema ``<e1, e2, ..., eN>`` (Definition 1)."""

    def __init__(self, name: str, attributes: Iterable[Attribute]) -> None:
        self.name = name
        self.attributes: tuple[Attribute, ...] = tuple(attributes)
        if not self.attributes:
            raise SchemaError(f"schema {name!r} must have at least one attribute")
        self._by_name = {a.name: a for a in self.attributes}
        if len(self._by_name) != len(self.attributes):
            raise SchemaError(f"schema {name!r} has duplicate attribute names")

    def __contains__(self, attr_name: str) -> bool:
        return attr_name in self._by_name

    def __len__(self) -> int:
        return len(self.attributes)

    def attribute(self, name: str) -> Attribute:
        try:
            return self._by_name[name]
        except KeyError:
            raise SchemaError(
                f"schema {self.name!r} has no attribute {name!r}; "
                f"known: {sorted(self._by_name)}"
            ) from None

    def validate(self, values: Mapping[str, Any]) -> None:
        """Check that ``values`` is a full, well-typed schema instance."""
        missing = set(self._by_name) - set(values)
        extra = set(values) - set(self._by_name)
        if missing or extra:
            raise SchemaError(
                f"values do not instantiate schema {self.name!r}: "
                f"missing={sorted(missing)} extra={sorted(extra)}"
            )
        for attr in self.attributes:
            attr.validate(values[attr.name])

    def __repr__(self) -> str:
        names = ", ".join(a.name for a in self.attributes)
        return f"Schema({self.name!r}: <{names}>)"


@dataclass(frozen=True, slots=True)
class StreamTuple:
    """An immutable streaming tuple.

    Attributes:
        relation: name of the logical stream the tuple belongs to
            (``"R"`` or ``"S"`` in the two-way joins studied here).
        ts: event timestamp, a value from the time domain *T*
            (Definition 2) — float seconds in this implementation.
        values: attribute name → value mapping (the schema instance).
        seq: per-relation sequence number assigned at the source; gives
            a total order among equal timestamps and a stable identity.
    """

    relation: str
    ts: float
    values: Mapping[str, Any]
    seq: int = 0

    def __getitem__(self, attr_name: str) -> Any:
        try:
            return self.values[attr_name]
        except KeyError:
            raise SchemaError(
                f"tuple of {self.relation!r} has no attribute {attr_name!r}"
            ) from None

    def get(self, attr_name: str, default: Any = None) -> Any:
        return self.values.get(attr_name, default)

    @property
    def ident(self) -> tuple[str, int]:
        """A stable identity: ``(relation, seq)``."""
        return (self.relation, self.seq)

    def size_bytes(self) -> int:
        """Approximate in-memory footprint used by memory accounting."""
        total = TUPLE_OVERHEAD_BYTES
        for value in self.values.values():
            total += _value_size(value)
        return total

    def __repr__(self) -> str:
        vals = ", ".join(f"{k}={v!r}" for k, v in self.values.items())
        return f"StreamTuple({self.relation}#{self.seq} @{self.ts:.3f} {{{vals}}})"


def _value_size(value: Any) -> int:
    """Approximate payload size of one attribute value in bytes."""
    if isinstance(value, bool):
        return 1
    if isinstance(value, int):
        return 8
    if isinstance(value, float):
        return 8
    if isinstance(value, str):
        return len(value)
    if isinstance(value, bytes):
        return len(value)
    if isinstance(value, (list, tuple)):
        return sum(_value_size(v) for v in value)
    return sys.getsizeof(value)


@dataclass(frozen=True, slots=True)
class JoinResult:
    """The concatenation of a matched ``(r, s)`` pair (Definition 4).

    The output timestamp policy follows the thesis discussion: by
    default the *maximum* of the two input timestamps, preserving
    ordering in the derived stream.  :func:`make_result` implements the
    alternative minimum-timestamp policy as well.
    """

    r: StreamTuple
    s: StreamTuple
    ts: float
    produced_at: float = 0.0
    producer: str = ""

    @property
    def key(self) -> tuple[tuple[str, int], tuple[str, int]]:
        """Identity of the result: the pair of input tuple identities."""
        return (self.r.ident, self.s.ident)


def make_result(r: StreamTuple, s: StreamTuple, *, produced_at: float = 0.0,
                producer: str = "", timestamp_policy: str = "max") -> JoinResult:
    """Build a :class:`JoinResult`, normalising the (r, s) operand order.

    Args:
        timestamp_policy: ``"max"`` (default; newest input timestamp) or
            ``"min"`` (result expires when either input expires).
    """
    if timestamp_policy == "max":
        ts = max(r.ts, s.ts)
    elif timestamp_policy == "min":
        ts = min(r.ts, s.ts)
    else:
        raise ValueError(f"unknown timestamp policy {timestamp_policy!r}")
    return JoinResult(r=r, s=s, ts=ts, produced_at=produced_at, producer=producer)
