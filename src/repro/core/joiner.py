"""The joiner service (thesis §3.1.2).

A joiner unit belongs to one side of the biclique and has two execution
branches: the **store branch** (tuples of its own relation go into the
chained in-memory index, subject to the sliding window) and the **join
branch** (tuples of the opposite relation expire stale sub-indexes per
Theorem 1, probe the remaining ones and emit join results).

When the ordering protocol is enabled, every arriving envelope first
passes through the :class:`~repro.core.ordering.ReorderBuffer`, so that
the processed sequence is a subsequence of the global tuple order and
each joinable pair is produced exactly once across the whole biclique.
With the protocol disabled (the E10 ablation), envelopes are processed
in arrival order and cross-channel disorder translates directly into
missed/duplicate results — the Figure 8(c)/(d) failure modes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from ..broker.message import Delivery
from ..errors import ConfigurationError
from ..obs.trace import (
    NOOP_TRACER,
    SPAN_ARCHIVE,
    SPAN_EMIT,
    SPAN_PROBE,
    SPAN_REPLAY,
    SPAN_STORE,
    NoopTracer,
)
from .batching import EnvelopeBatch
from .chained_index import ChainedInMemoryIndex
from .ordering import KIND_JOIN, KIND_PUNCTUATION, KIND_STORE, Envelope, ReorderBuffer
from .predicates import JoinPredicate
from .tuples import JoinResult, StreamTuple, make_result
from .windows import TimeWindow

if TYPE_CHECKING:
    from ..obs.registry import MetricsRegistry

#: Result sink: called once per produced join result.
ResultSink = Callable[[JoinResult], None]


@dataclass
class JoinerStats:
    """Per-joiner processing counters."""

    envelopes_received: int = 0
    tuples_stored: int = 0
    probes_processed: int = 0
    results_emitted: int = 0
    punctuations_received: int = 0
    #: Stores rebuilt from the replay log after a crash (not re-probed).
    tuples_restored: int = 0
    #: Duplicate deliveries dropped by the idempotent reorder buffer.
    duplicates_dropped: int = 0

    @property
    def work_items(self) -> int:
        return self.tuples_stored + self.probes_processed


class Joiner:
    """One join-processing unit of the biclique."""

    def __init__(self, unit_id: str, side: str, predicate: JoinPredicate,
                 window: TimeWindow, archive_period: float | None,
                 result_sink: ResultSink, *, ordered: bool = True,
                 timestamp_policy: str = "max",
                 expiry_slack: float = 0.0,
                 archive_expired: bool = False,
                 tracer: NoopTracer = NOOP_TRACER) -> None:
        if side not in ("R", "S"):
            raise ConfigurationError(f"side must be 'R' or 'S', got {side!r}")
        self.unit_id = unit_id
        self.side = side
        self.predicate = predicate
        self.window = window
        #: Causal tracer (no-op by default; see :mod:`repro.obs.trace`).
        self.tracer = tracer
        #: Optional archive tier for expired slices (partial-historical
        #: queries, see :mod:`repro.core.archive`).
        self.archive = None
        archive_sink = None
        if archive_expired:
            from .archive import ArchivedSlice, ArchiveStore

            self.archive = ArchiveStore()

            def archive_sink(tuples, _store=self.archive):
                _store.append(ArchivedSlice(
                    unit_id=self.unit_id, relation=self.side,
                    min_ts=min(t.ts for t in tuples),
                    max_ts=max(t.ts for t in tuples),
                    tuples=tuple(tuples)))
                if self.tracer.enabled:
                    self.tracer.record(SPAN_ARCHIVE, self._now, self.unit_id,
                                       detail=f"tuples={len(tuples)}")

        self.index = ChainedInMemoryIndex(
            predicate, stored_side=side, window=window,
            archive_period=archive_period, expiry_slack=expiry_slack,
            archive_sink=archive_sink)
        self.result_sink = result_sink
        self.ordered = ordered
        self.timestamp_policy = timestamp_policy
        # Idempotent by construction: an at-least-once transport may
        # deliver duplicate copies; the per-channel counter dedup drops
        # them before they can double-store or double-probe.
        self.reorder = ReorderBuffer(dedup=True)
        self.stats = JoinerStats()
        self._now = 0.0
        #: Name of the broker queue backing this unit's inbox; assigned
        #: by the engine when the unit is wired into the topology.
        self.inbox_queue: str | None = None
        #: Manual-ack hook: called with the delivery tag once the
        #: corresponding envelope is *processed* (not merely delivered).
        #: Set by the engine when the broker runs in simulated mode.
        self.acker: Callable[[int], None] | None = None
        self._ack_tags: dict[tuple[int, str, str], int] = {}
        #: Outstanding member count per batch delivery tag: a batch is
        #: acknowledged only after *every* member envelope is settled
        #: (processed, deduplicated, or skipped), so a crash mid-batch
        #: redelivers it.  Single-envelope tags never appear here.
        self._batch_refs: dict[int, int] = {}
        #: One-shot member keys to drop on arrival: set by the engine on
        #: restart for batch members the crashed incarnation already
        #: processed, so a redelivered partial batch cannot double-store
        #: or double-probe them.
        self.skip_once: set[tuple[int, str, str]] = set()
        #: Credit-grant hook (set by the overload manager): called once
        #: per *processed* data envelope, returning one flow-control
        #: credit to the router pool.  Punctuations are exempt (control
        #: traffic), and reorder-buffer duplicates never reach
        #: processing, so grants cannot outrun acquisitions.
        self.credit_grant: Callable[[], None] | None = None

    # ------------------------------------------------------------------
    # Memory / load introspection (feeds the cluster resource model)
    # ------------------------------------------------------------------
    @property
    def live_bytes(self) -> int:
        """Approximate footprint of the stored window state."""
        return self.index.bytes

    @property
    def stored_tuples(self) -> int:
        return len(self.index)

    @property
    def comparisons(self) -> int:
        """Total predicate comparisons performed so far."""
        return self.index.stats.comparisons

    def export_metrics(self, registry: "MetricsRegistry") -> None:
        """Publish this joiner's counters into a metrics registry."""
        labels = {"unit": self.unit_id, "side": self.side}
        registry.counter("repro_joiner_envelopes_received_total",
                         "Envelopes delivered to the joiner inbox.",
                         labels).set_total(self.stats.envelopes_received)
        registry.counter("repro_joiner_tuples_stored_total",
                         "Tuples inserted into the chained index.",
                         labels).set_total(self.stats.tuples_stored)
        registry.counter("repro_joiner_probes_total",
                         "Join-stream probes processed.",
                         labels).set_total(self.stats.probes_processed)
        registry.counter("repro_joiner_results_emitted_total",
                         "Join results produced.",
                         labels).set_total(self.stats.results_emitted)
        registry.counter("repro_joiner_tuples_restored_total",
                         "Tuples rebuilt from the window-replay log.",
                         labels).set_total(self.stats.tuples_restored)
        registry.counter("repro_joiner_duplicates_dropped_total",
                         "Duplicate envelope deliveries deduplicated.",
                         labels).set_total(self.stats.duplicates_dropped)
        registry.counter("repro_joiner_comparisons_total",
                         "Predicate comparisons performed by the index.",
                         labels).set_total(self.comparisons)
        registry.gauge("repro_joiner_live_bytes",
                       "Approximate stored window footprint in bytes.",
                       labels).set(self.live_bytes)
        registry.gauge("repro_joiner_stored_tuples",
                       "Tuples currently held in the window index.",
                       labels).set(self.stored_tuples)
        self.index.export_metrics(registry, labels)
        if self.archive is not None:
            self.archive.export_metrics(registry, labels)

    # ------------------------------------------------------------------
    # Router membership (ordering protocol watermark set)
    # ------------------------------------------------------------------
    def register_router(self, router_id: str) -> None:
        self.reorder.register_router(router_id)

    def unregister_router(self, router_id: str) -> None:
        for env in self.reorder.unregister_router(router_id):
            self._process_released(env)

    # ------------------------------------------------------------------
    # Input
    # ------------------------------------------------------------------
    def on_delivery(self, delivery: Delivery) -> None:
        """Broker callback: an envelope (or batch) reached this inbox."""
        self._now = max(self._now, delivery.time)
        payload = delivery.message.payload
        if isinstance(payload, EnvelopeBatch):
            self.on_batch(payload, ack_tag=delivery.tag)
        else:
            self.on_envelope(payload, ack_tag=delivery.tag)

    def on_envelope(self, envelope: Envelope, *, ack_tag: int = -1) -> None:
        """Accept one envelope; ``ack_tag`` is acknowledged only once
        the envelope is actually processed, so a crash between delivery
        and processing still triggers broker redelivery."""
        self.stats.envelopes_received += 1
        if not self.ordered:
            self._process(envelope)
            self._ack(ack_tag)
            return
        if envelope.kind == KIND_PUNCTUATION:
            self.stats.punctuations_received += 1
            dropped_before = self.reorder.duplicates_dropped
            released = self.reorder.add(envelope)
            # Punctuations are absorbed (or dropped as duplicates) the
            # moment they are added — acknowledge immediately.
            self._ack(ack_tag)
        else:
            key = self._envelope_key(envelope)
            original_buffered = key in self._ack_tags
            if ack_tag >= 0:
                self._ack_tags.setdefault(key, ack_tag)
            dropped_before = self.reorder.duplicates_dropped
            released = self.reorder.add(envelope)
            if self.reorder.duplicates_dropped > dropped_before:
                # A duplicate copy sharing the original's tag.  If the
                # original is still buffered awaiting its watermark, the
                # tag must stay unacked — acking now would mark the
                # envelope processed, and a crash before release would
                # then neither redeliver it nor exclude it from the
                # replay snapshot correctly.  Only once the original has
                # been processed (its recorded tag is gone) is the
                # residue safe to acknowledge.
                if not original_buffered:
                    self._ack_tags.pop(key, None)
                    self._ack(ack_tag)
        self.stats.duplicates_dropped = self.reorder.duplicates_dropped
        for env in released:
            self._process_released(env)

    def on_batch(self, batch: EnvelopeBatch, *, ack_tag: int = -1) -> None:
        """Accept a transport batch: one delivery, many data envelopes.

        Members pass through the reorder buffer in batch (= send)
        order, then everything releasable is processed in one pass —
        one ack cycle and one stats flush for the whole batch.  The
        batch tag is acknowledged only when all members are settled
        (see :attr:`_batch_refs`), so a crash mid-batch redelivers the
        batch rather than losing its unprocessed tail.
        """
        envelopes = batch.envelopes
        self.stats.envelopes_received += len(envelopes)
        if not self.ordered:
            self._process_batch(envelopes)
            if ack_tag >= 0 and self.acker is not None:
                self.acker(ack_tag)
            return
        track = ack_tag >= 0
        if track:
            # Overwrite, not add: a duplicate batch copy shares the
            # original's tag, and each member settles exactly once
            # after the most recent overwrite (already-settled members
            # decrement immediately below, buffered ones at release).
            self._batch_refs[ack_tag] = len(envelopes)
        reorder = self.reorder
        push = reorder.push
        ack_tags = self._ack_tags
        skip = self.skip_once
        for env in envelopes:
            key = (env.counter, env.router_id, env.kind)
            if skip and key in skip:
                # Already processed by the pre-crash incarnation.
                skip.discard(key)
                if track:
                    self._ack(ack_tag)
                continue
            original_buffered = key in ack_tags
            if track:
                ack_tags.setdefault(key, ack_tag)
            if not push(env):
                # Duplicate member; same residue rule as on_envelope.
                if not original_buffered:
                    ack_tags.pop(key, None)
                    if track:
                        self._ack(ack_tag)
        self.stats.duplicates_dropped = reorder.duplicates_dropped
        released = reorder.release_ready()
        if released:
            self._process_batch(released)

    def flush(self) -> None:
        """Process everything still buffered (end-of-stream)."""
        self._process_batch(self.reorder.drain())

    # ------------------------------------------------------------------
    # Crash recovery
    # ------------------------------------------------------------------
    def restore(self, envelopes: list[Envelope]) -> None:
        """Rebuild window state from replayed **store** envelopes.

        Replay is *store-only*: the join branch never runs, so replayed
        tuples cannot re-emit results another unit (or this unit's
        previous incarnation) already produced — recovery preserves
        exactly-once output.
        """
        for env in sorted(envelopes, key=lambda e: e.order_key):
            if env.kind != KIND_STORE or env.tuple is None:
                raise ConfigurationError(
                    f"restore() accepts store envelopes only, got {env.kind!r}")
            if env.tuple.relation != self.side:
                raise ConfigurationError(
                    f"joiner {self.unit_id!r} (side {self.side}) asked to "
                    f"restore a tuple of relation {env.tuple.relation!r}")
            self.index.insert(env.tuple)
            self.stats.tuples_restored += 1
            if self.tracer.enabled:
                self.tracer.record(SPAN_REPLAY, self._now, self.unit_id,
                                   tuple_id=env.tuple.ident,
                                   detail=f"router={env.router_id}")

    # ------------------------------------------------------------------
    # Acknowledgement plumbing
    # ------------------------------------------------------------------
    @staticmethod
    def _envelope_key(envelope: Envelope) -> tuple[int, str, str]:
        return (envelope.counter, envelope.router_id, envelope.kind)

    def _ack(self, tag: int) -> None:
        if tag < 0 or self.acker is None:
            return
        refs = self._batch_refs
        outstanding = refs.get(tag)
        if outstanding is None:  # a single-envelope delivery
            self.acker(tag)
        elif outstanding <= 1:  # last member of a batch settled
            del refs[tag]
            self.acker(tag)
        else:
            refs[tag] = outstanding - 1

    def _process_released(self, envelope: Envelope) -> None:
        self._process(envelope)
        tag = self._ack_tags.pop(self._envelope_key(envelope), -1)
        self._ack(tag)

    def _process_batch(self, released: list[Envelope]) -> None:
        """Process many released envelopes in one pass.

        The amortised counterpart of :meth:`_process_released`:
        attribute lookups (tracer, credit hook, index methods, sink)
        are hoisted out of the loop and the
        :class:`JoinerStats`/:class:`~repro.core.chained_index.
        ChainedIndexStats` counters accumulate in locals, flushed once
        at the end — one attribute store per batch, not per candidate.
        """
        if not released:
            return
        stats = self.stats
        ack_tags = self._ack_tags
        tracer = self.tracer
        traced = tracer.enabled
        credit_grant = self.credit_grant
        result_sink = self.result_sink
        index_probe = self.index.probe
        index_insert = self.index.insert
        side = self.side
        side_is_r = side == "R"
        policy = self.timestamp_policy
        now = self._now
        unit_id = self.unit_id
        stored_n = probes_n = results_n = punctuations_n = 0
        for env in released:
            kind = env.kind
            t = env.tuple
            if kind == KIND_STORE:
                if t.relation != side:
                    raise ConfigurationError(
                        f"joiner {unit_id!r} (side {side}) asked to store "
                        f"a tuple of relation {t.relation!r}")
                index_insert(t)
                stored_n += 1
                if traced:
                    tracer.record(SPAN_STORE, now, unit_id, tuple_id=t.ident)
            elif kind == KIND_JOIN:
                if t.relation == side:
                    raise ConfigurationError(
                        f"joiner {unit_id!r} (side {side}) asked to probe "
                        f"with a tuple of its own relation {t.relation!r}")
                probes_n += 1
                if traced:
                    tracer.record(SPAN_PROBE, now, unit_id, tuple_id=t.ident)
                for stored in index_probe(t):
                    if side_is_r:
                        result = make_result(
                            stored, t, produced_at=now, producer=unit_id,
                            timestamp_policy=policy)
                    else:
                        result = make_result(
                            t, stored, produced_at=now, producer=unit_id,
                            timestamp_policy=policy)
                    results_n += 1
                    if traced:
                        tracer.record(
                            SPAN_EMIT, now, unit_id,
                            tuple_id=t.ident, partner=stored.ident,
                            ref_time=max(result.r.ts, result.s.ts))
                    result_sink(result)
            else:  # punctuation (unordered mode only; absorbed otherwise)
                punctuations_n += 1
                continue
            if credit_grant is not None:
                credit_grant()
            tag = ack_tags.pop((env.counter, env.router_id, kind), -1)
            if tag >= 0:
                self._ack(tag)
        stats.tuples_stored += stored_n
        stats.probes_processed += probes_n
        stats.results_emitted += results_n
        if punctuations_n and not self.ordered:
            stats.punctuations_received += punctuations_n

    # ------------------------------------------------------------------
    # The two execution branches
    # ------------------------------------------------------------------
    def _process(self, envelope: Envelope) -> None:
        if envelope.kind == KIND_PUNCTUATION:
            if not self.ordered:
                self.stats.punctuations_received += 1
            return
        t = envelope.tuple
        assert t is not None
        if envelope.kind == KIND_STORE:
            self._store(t)
        elif envelope.kind == KIND_JOIN:
            self._probe(t)
        else:  # pragma: no cover - Envelope constrains kinds
            raise ConfigurationError(f"unknown envelope kind {envelope.kind!r}")
        if self.credit_grant is not None:
            self.credit_grant()

    def _store(self, t: StreamTuple) -> None:
        if t.relation != self.side:
            raise ConfigurationError(
                f"joiner {self.unit_id!r} (side {self.side}) asked to store "
                f"a tuple of relation {t.relation!r}")
        self.index.insert(t)
        self.stats.tuples_stored += 1
        if self.tracer.enabled:
            self.tracer.record(SPAN_STORE, self._now, self.unit_id,
                               tuple_id=t.ident)

    def _probe(self, t: StreamTuple) -> None:
        if t.relation == self.side:
            raise ConfigurationError(
                f"joiner {self.unit_id!r} (side {self.side}) asked to probe "
                f"with a tuple of its own relation {t.relation!r}")
        self.stats.probes_processed += 1
        if self.tracer.enabled:
            self.tracer.record(SPAN_PROBE, self._now, self.unit_id,
                               tuple_id=t.ident)
        for stored in self.index.probe(t):
            if self.side == "R":
                result = make_result(stored, t, produced_at=self._now,
                                     producer=self.unit_id,
                                     timestamp_policy=self.timestamp_policy)
            else:
                result = make_result(t, stored, produced_at=self._now,
                                     producer=self.unit_id,
                                     timestamp_policy=self.timestamp_policy)
            self.stats.results_emitted += 1
            if self.tracer.enabled:
                self.tracer.record(
                    SPAN_EMIT, self._now, self.unit_id,
                    tuple_id=t.ident, partner=stored.ident,
                    ref_time=max(result.r.ts, result.s.ts))
            self.result_sink(result)
