"""Routing strategies and group membership (thesis §3.2, BiStream
ContRand/ContHash).

A :class:`JoinerGroup` tracks one side's processing units — including
*subgroup* structure and units that are *draining* (scheduled for
scale-in but still holding live window state).

Two routing strategies decide, per incoming tuple, the storage target(s)
on its own side and the join-probe targets on the opposite side:

- :class:`RandomRouting` (ContRand) — content-insensitive.  With one
  subgroup per side (the default, the pure join-biclique) a tuple is
  stored on exactly one unit (round-robin) and broadcast to *all*
  opposite units for joining.  With ``k`` subgroups per side, a tuple is
  stored on one unit *per subgroup* (replication factor ``k``) and each
  probe is sent to all units of just *one* subgroup (fan-out divided by
  ``k``) — the memory-vs-network knob that interpolates between the
  join-biclique and join-matrix extremes.
- :class:`HashRouting` (ContHash) — for equi-joins.  Keys are hashed
  into a fixed partition space; each partition is owned by one unit.
  Store and probe tuples with equal join keys land on the same unit, so
  both fan-outs are 1.  Scaling **re-assigns partitions for new tuples
  only** (no data migration): ownership history is kept as *epochs*,
  and probes are routed to every unit that owned their partition within
  the window horizon, so results spanning a scaling event are not lost.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Callable

from ..errors import RoutingError, ScalingError
from .predicates import ConjunctionPredicate, EquiJoinPredicate, JoinPredicate
from .tuples import StreamTuple
from .windows import TimeWindow


# ---------------------------------------------------------------------------
# Group membership
# ---------------------------------------------------------------------------
@dataclass
class UnitInfo:
    """Lifecycle record of one joiner unit within its group."""

    unit_id: str
    subgroup: int
    draining_since: float | None = None

    @property
    def is_draining(self) -> bool:
        return self.draining_since is not None


class JoinerGroup:
    """The set of units storing one relation, split into subgroups."""

    def __init__(self, side: str, subgroup_count: int = 1) -> None:
        if side not in ("R", "S"):
            raise RoutingError(f"side must be 'R' or 'S', got {side!r}")
        if subgroup_count < 1:
            raise RoutingError(
                f"subgroup count must be >= 1, got {subgroup_count!r}")
        self.side = side
        self.subgroup_count = subgroup_count
        self._units: dict[str, UnitInfo] = {}

    def __len__(self) -> int:
        return len(self._units)

    def __contains__(self, unit_id: str) -> bool:
        return unit_id in self._units

    def add_unit(self, unit_id: str) -> UnitInfo:
        """Add a unit, placing it in the least-populated subgroup."""
        if unit_id in self._units:
            raise ScalingError(f"unit {unit_id!r} already in group {self.side}")
        sizes = [0] * self.subgroup_count
        for info in self._units.values():
            if not info.is_draining:
                sizes[info.subgroup] += 1
        subgroup = sizes.index(min(sizes))
        info = UnitInfo(unit_id=unit_id, subgroup=subgroup)
        self._units[unit_id] = info
        return info

    def start_draining(self, unit_id: str, now: float) -> UnitInfo:
        """Mark a unit as draining: no new stores, still probed."""
        info = self._info(unit_id)
        if info.is_draining:
            raise ScalingError(f"unit {unit_id!r} is already draining")
        active = self.active_units(info.subgroup)
        if len(active) <= 1:
            raise ScalingError(
                f"cannot drain {unit_id!r}: it is the last active unit of "
                f"subgroup {info.subgroup} on side {self.side}")
        info.draining_since = now
        return info

    def remove_unit(self, unit_id: str) -> None:
        """Remove a (fully drained) unit from the group."""
        self._info(unit_id)
        del self._units[unit_id]

    def drained_units(self, now: float, window: TimeWindow) -> list[str]:
        """Draining units whose stored window state has fully expired."""
        return [info.unit_id for info in self._units.values()
                if info.draining_since is not None
                and now - info.draining_since > window.seconds]

    # -- queries -----------------------------------------------------------
    def active_units(self, subgroup: int | None = None) -> list[str]:
        """Non-draining unit ids, optionally restricted to one subgroup."""
        return sorted(
            info.unit_id for info in self._units.values()
            if not info.is_draining
            and (subgroup is None or info.subgroup == subgroup))

    def all_units(self, subgroup: int | None = None) -> list[str]:
        """All unit ids (including draining)."""
        return sorted(
            info.unit_id for info in self._units.values()
            if subgroup is None or info.subgroup == subgroup)

    def subgroup_of(self, unit_id: str) -> int:
        return self._info(unit_id).subgroup

    def _info(self, unit_id: str) -> UnitInfo:
        try:
            return self._units[unit_id]
        except KeyError:
            raise RoutingError(
                f"unit {unit_id!r} not in group {self.side}; "
                f"known: {self.all_units()}") from None


# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------
def _opposite(side: str) -> str:
    return "S" if side == "R" else "R"


def _has_equi_conjunct(predicate: JoinPredicate) -> bool:
    """Does the predicate contain an equi-join usable for ContHash?"""
    if isinstance(predicate, EquiJoinPredicate):
        return True
    if isinstance(predicate, ConjunctionPredicate):
        return isinstance(predicate.indexable_conjunct, EquiJoinPredicate)
    return False


def stable_hash(value: object) -> int:
    """A deterministic, process-independent hash for partition routing.

    ``hash()`` is randomised per process for strings; experiments must
    be reproducible, so keys are hashed through CRC32 of their repr.
    """
    return zlib.crc32(repr(value).encode("utf-8"))


class RoutingStrategy:
    """Common interface: per-tuple store and join target unit ids."""

    def __init__(self, groups: dict[str, JoinerGroup]) -> None:
        if set(groups) != {"R", "S"}:
            raise RoutingError("routing needs exactly the groups 'R' and 'S'")
        self.groups = groups

    def store_targets(self, t: StreamTuple, now: float) -> list[str]:
        raise NotImplementedError

    def join_targets(self, t: StreamTuple, now: float) -> list[str]:
        raise NotImplementedError

    def all_unit_ids(self) -> list[str]:
        """Every unit in both groups (punctuation broadcast set)."""
        return self.groups["R"].all_units() + self.groups["S"].all_units()

    def on_membership_change(self, now: float) -> None:
        """Hook called by the engine after any scale event."""

    @property
    def replication_factor(self) -> dict[str, int]:
        """Stored copies per tuple, per side."""
        return {"R": self.groups["R"].subgroup_count,
                "S": self.groups["S"].subgroup_count}


class RandomRouting(RoutingStrategy):
    """ContRand: content-insensitive round-robin store + broadcast join."""

    def __init__(self, groups: dict[str, JoinerGroup]) -> None:
        super().__init__(groups)
        self._store_rr: dict[tuple[str, int], int] = {}
        self._join_rr: dict[str, int] = {}
        #: Straggler signal (set by the overload manager): a callable
        #: returning the currently-hot unit ids.  Store placement is
        #: *optional* work — any active unit is correct — so a hot pick
        #: is deterministically substituted with a cold unit from the
        #: same subgroup.  Join targets are never filtered: the probe
        #: broadcast is required for correctness.
        self.hot_filter: "Callable[[], frozenset[str]] | None" = None
        self.hot_avoided = 0

    def store_targets(self, t: StreamTuple, now: float) -> list[str]:
        group = self.groups[t.relation]
        hot = self.hot_filter() if self.hot_filter is not None else frozenset()
        targets = []
        for subgroup in range(group.subgroup_count):
            units = group.active_units(subgroup)
            if not units:
                raise RoutingError(
                    f"no active units in subgroup {subgroup} of side "
                    f"{group.side}")
            key = (group.side, subgroup)
            index = self._store_rr.get(key, 0)
            pick = units[index % len(units)]
            if pick in hot:
                cold = [u for u in units if u not in hot]
                if cold:
                    pick = cold[index % len(cold)]
                    self.hot_avoided += 1
            targets.append(pick)
            self._store_rr[key] = index + 1
        return targets

    def join_targets(self, t: StreamTuple, now: float) -> list[str]:
        group = self.groups[_opposite(t.relation)]
        index = self._join_rr.get(group.side, 0)
        subgroup = index % group.subgroup_count
        self._join_rr[group.side] = index + 1
        units = group.all_units(subgroup)  # draining units still probed
        if not units:
            raise RoutingError(
                f"no units in subgroup {subgroup} of side {group.side}")
        return units


@dataclass
class _Epoch:
    """One ownership period of a hash partition."""

    start: float
    unit_id: str


class HashRouting(RoutingStrategy):
    """ContHash: hash-partitioned routing for equi-join predicates.

    Args:
        groups: the two joiner groups.
        predicate: must expose a key attribute on both sides
            (an equi-join, or a conjunction containing one).
        window: the sliding window; bounds how long old partition
            epochs must keep receiving probes after a re-assignment.
        partitions: size of the fixed hash partition space (should
            comfortably exceed the maximum unit count per side).
    """

    def __init__(self, groups: dict[str, JoinerGroup],
                 predicate: JoinPredicate, window: TimeWindow,
                 partitions: int = 64) -> None:
        super().__init__(groups)
        if partitions < 1:
            raise RoutingError(f"partitions must be >= 1, got {partitions}")
        # ContHash is only *correct* for predicates with an equi-join
        # conjunct: hash collocation relies on matching tuples having
        # equal key values.  A band join's matches have nearby-but-
        # different values that hash to unrelated partitions.
        if not _has_equi_conjunct(predicate):
            raise RoutingError(
                f"hash routing requires an equi-join (conjunct); "
                f"predicate {predicate} has none — use random routing")
        for side in ("R", "S"):
            if predicate.key_attribute(side) is None:
                raise RoutingError(
                    "hash routing requires a key attribute on both sides "
                    f"(predicate {predicate} offers none on side {side!r})")
            if groups[side].subgroup_count != 1:
                raise RoutingError(
                    "hash routing does not combine with subgroups "
                    "(fan-out is already 1)")
        self.predicate = predicate
        self.window = window
        self.partitions = partitions
        #: side → partition index → ownership epoch history (time-ordered)
        self._epochs: dict[str, list[list[_Epoch]]] = {
            "R": [[] for _ in range(partitions)],
            "S": [[] for _ in range(partitions)],
        }
        self.on_membership_change(0.0)

    # -- partition assignment ------------------------------------------------
    def _partition_of(self, t: StreamTuple, stored_side: str) -> int:
        attr = self.predicate.key_attribute(t.relation)
        return stable_hash(t[attr]) % self.partitions

    def on_membership_change(self, now: float) -> None:
        """Re-assign partitions to the current active units of each side.

        New tuples follow the new assignment immediately; the previous
        owner keeps receiving probes for its partitions until the window
        horizon passes (see :meth:`join_targets`), so no stored state
        needs migrating.
        """
        for side in ("R", "S"):
            units = self.groups[side].active_units()
            if not units:
                continue
            for partition, history in enumerate(self._epochs[side]):
                owner = units[partition % len(units)]
                if history and history[-1].unit_id == owner:
                    continue
                history.append(_Epoch(start=now, unit_id=owner))

    def _owners_in_horizon(self, side: str, partition: int, now: float,
                           probe_ts: float) -> list[str]:
        """Units that owned ``partition`` recently enough to hold live
        tuples joinable with a probe at ``probe_ts``."""
        history = self._epochs[side][partition]
        if not history:
            raise RoutingError(
                f"partition {partition} on side {side!r} has no owner "
                f"(group empty at initialisation?)")
        horizon = probe_ts - self.window.seconds
        owners: list[str] = []
        group = self.groups[side]
        for i, epoch in enumerate(history):
            end = history[i + 1].start if i + 1 < len(history) else None
            # The epoch's stored tuples have timestamps < end; they are
            # all expired once the horizon passes the epoch's end.
            if end is not None and end <= horizon:
                continue
            if epoch.unit_id in group and epoch.unit_id not in owners:
                owners.append(epoch.unit_id)
        # Prune history entries that can never be probed again.
        self._epochs[side][partition] = [
            e for i, e in enumerate(history)
            if i + 1 >= len(history)
            or history[i + 1].start > now - self.window.seconds]
        return owners

    # -- strategy interface ---------------------------------------------------
    def store_targets(self, t: StreamTuple, now: float) -> list[str]:
        side = t.relation
        partition = self._partition_of(t, side)
        history = self._epochs[side][partition]
        if not history:
            raise RoutingError(
                f"partition {partition} on side {side!r} has no owner")
        return [history[-1].unit_id]

    def join_targets(self, t: StreamTuple, now: float) -> list[str]:
        side = _opposite(t.relation)
        partition = self._partition_of(t, side)
        return self._owners_in_horizon(side, partition, now, t.ts)
